// Online consistency checker: a happens-before shadow oracle for the SVM
// protocols.
//
// The serial simulation is single-threaded, so the checker observes one
// global sequential order of every shared-memory access, protocol state
// change and synchronization handoff. In PDES mode the partitions call the
// hooks concurrently; an internal mutex serializes them, and every *verdict*
// is interleaving-independent because reads are only judged against writes
// their vector clock covers — writes that reached the shadow at least one
// lookahead window (and one mutex acquisition) earlier. Unordered
// concurrent accesses are already skipped as application races either way.
// The checker maintains
//
//  * a shadow copy of the shared address space, updated at every timed write
//    and every out-of-band initialization write, plus per-4-byte-word
//    metadata {last writer node, writer interval index};
//  * per-(node, page) fetch/notice bookkeeping mirroring PageCopy::inval_gen;
//  * per-(writer, page) diff/update lifecycle counts;
//  * per-lock release clocks and a per-epoch barrier rendezvous log.
//
// From these it validates, online,
//
//  (a) the data oracle: a read must return the latest value of each word
//      whose writing interval the reader's vector clock covers (or that the
//      reader's own node wrote). Reads of words whose last write is not
//      ordered before the reader are intentional races in the application
//      (allowed under release consistency) and are skipped, not judged.
//  (b) the page state machine: every transition in hlrc.cpp/aurc.cpp is one
//      of the six legal edges (no invalid->dirty, no write-notice
//      resurrection: a fetch that overlapped an invalidation notice must
//      install invalid, not read-only);
//  (c) lifecycle and clocks: no diff/update applied more often than created
//      (and none lost by the end of the run), vector clocks monotone, lock
//      acquires covering the last release of that lock, barrier exits
//      covering the merged clock of a fully-arrived epoch.
//
// The checker is passive: it never charges time, posts messages or touches
// protocol state, so a checked run is byte-identical to an unchecked one
// (tools/check_equivalence.sh proves it per build). Compile gate:
// -DSVMSIM_CHECK=OFF defines SVMSIM_CHECK_DISABLED and every hook site
// vanishes. Runtime gate: hooks null-check engine::Simulator::checker().
// See docs/checking.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "check/config.hpp"
#include "engine/types.hpp"
#include "svm/address_space.hpp"
#include "svm/vclock.hpp"

namespace svmsim::check {

enum class Kind : std::uint8_t {
  kStaleRead = 0,    ///< read missed a happens-before-ordered write
  kRacyWrite,        ///< conflicting write without synchronization order
  kBadTransition,    ///< illegal page state-machine edge
  kResurrection,     ///< fetch installed read-only across an inval notice
  kDiffUnmatched,    ///< diff/update applied more often than created
  kDiffLost,         ///< diff created but never applied at the home
  kUpdateLost,       ///< update emitted but never applied at the home
  kClockRegression,  ///< a node's vector clock went backwards (or ran ahead)
  kLockHandoff,      ///< acquire does not cover the lock's last release
  kBarrierHandoff,   ///< barrier exit without full rendezvous coverage
  kFinalDivergence,  ///< home copy != shadow after the final barrier
  kCount,
};

[[nodiscard]] std::string_view to_string(Kind k) noexcept;

/// Which protocol action performed a page state transition (the edge label
/// of the state machine; legality is checked per event, not just per pair).
enum class PageEvent : std::uint8_t {
  kHomeMap = 0,        ///< home maps its own untouched page
  kFetchInstall,       ///< fetched copy installed read-only
  kFetchInstallStale,  ///< fetch raced a notice; installed invalid
  kArmWrite,           ///< write fault armed write detection (twin/AU)
  kFlushDemote,        ///< release flush re-armed write detection
  kInvalidate,         ///< write notice dropped the copy
};

[[nodiscard]] std::string_view to_string(PageEvent e) noexcept;

struct Violation {
  Kind kind = Kind::kCount;
  Cycles time = 0;
  NodeId node = -1;
  svm::PageId page = 0;
  std::string detail;
};

/// The per-run oracle. Constructed by Machine when SimConfig::check.enabled
/// is set (and the checker is compiled in); reached by every protocol layer
/// through engine::Simulator::checker() via the SVMSIM_CHECK_HOOK macro.
class Checker {
 public:
  /// Shadow metadata granularity; matches the protocol's diff granularity.
  static constexpr std::uint32_t kWordBytes = 4;
  /// Writer id of initialization data (debug_write / zero-fill): visible to
  /// every reader unconditionally.
  static constexpr std::int16_t kInitWriter = -1;
  /// Violations beyond this many are counted but not stored in detail.
  static constexpr std::size_t kMaxRecorded = 64;

  Checker(const Config& cfg, svm::AddressSpace& space);
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  /// Active fault injection (SVMSIM_CHECK_MUTATION, read at construction).
  [[nodiscard]] Mutation mutation() const noexcept { return mutation_; }

  [[nodiscard]] std::uint64_t violation_count() const noexcept {
    return violation_count_;
  }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] bool clean() const noexcept { return violation_count_ == 0; }

  // Inspection counters (tests and the end-of-run report).
  [[nodiscard]] std::uint64_t checked_words() const noexcept {
    return checked_words_;
  }
  [[nodiscard]] std::uint64_t racy_words_skipped() const noexcept {
    return racy_words_skipped_;
  }
  [[nodiscard]] std::uint64_t words_written() const noexcept {
    return words_written_;
  }
  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_;
  }

  // ---- data oracle --------------------------------------------------------
  /// Out-of-band initialization write (Machine::debug_write); may span pages.
  void on_debug_write(svm::GlobalAddr a, const void* src, std::uint64_t bytes);
  /// A timed read observed `bytes` at `a` (single page; callers chunk).
  /// `observed` points at the node copy's bytes that the application saw.
  void on_read(Cycles now, NodeId n, const svm::VClock& vc, svm::GlobalAddr a,
               const std::byte* observed, std::uint64_t bytes);
  /// A timed write stored `data` at `a` (single page; callers chunk).
  void on_write(Cycles now, NodeId n, const svm::VClock& vc, svm::GlobalAddr a,
                const std::byte* data, std::uint64_t bytes);

  // ---- page state machine -------------------------------------------------
  void on_page_state(Cycles now, NodeId n, svm::PageId page,
                     svm::PageState from, svm::PageState to, PageEvent ev);
  /// A remote fetch was issued (captures the notice count for resurrection
  /// detection, mirroring PageCopy::inval_gen's gen_at_start).
  void on_fetch_issue(NodeId n, svm::PageId page);
  /// A write notice hit this node's copy (the ++inval_gen site); fires even
  /// for unmapped/invalid copies, exactly like the protocol's counter.
  void on_inval_notice(NodeId n, svm::PageId page);

  // ---- diff / update lifecycle --------------------------------------------
  void on_diff_create(NodeId writer, svm::PageId page);
  void on_diff_apply(Cycles now, NodeId writer, svm::PageId page);
  void on_update_emit(NodeId writer, svm::PageId page);
  void on_update_apply(Cycles now, NodeId writer, svm::PageId page);

  // ---- intervals, clocks, synchronization handoffs ------------------------
  /// The release flush swapped out the interval's dirty list: writes from
  /// now on belong to the *next* interval (they will be flushed later even
  /// though the vector clock has not advanced yet).
  void on_flush_cut(NodeId n);
  /// The node's vector clock changed (advance at flush, merge at acquire).
  void on_vclock(Cycles now, NodeId n, const svm::VClock& vc);
  void on_lock_release(Cycles now, NodeId n, int lock, const svm::VClock& vc);
  void on_lock_acquired(Cycles now, NodeId n, int lock, const svm::VClock& vc);
  /// A node representative finished its pre-barrier flush (arrival).
  void on_barrier_flush(Cycles now, NodeId n, const svm::VClock& vc);
  /// A node representative left the barrier with clock `vc`.
  void on_barrier_exit(Cycles now, NodeId n, const svm::VClock& vc);

  /// Snapshot of node `n`'s vector clock as last reported through
  /// on_vclock. The schedule explorer's happens-before pruner reads these
  /// at wire decision points (docs/exploration.md): two pending deliveries
  /// whose source nodes' clocks are strictly ordered are causally ordered,
  /// so permuting them cannot expose new behavior.
  [[nodiscard]] svm::VClock node_clock(NodeId n) const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_vc_[static_cast<std::size_t>(n)];
  }

  /// End-of-run structural checks (after the runner's final barrier): every
  /// created diff/update applied, every touched home copy equal to the
  /// shadow. Idempotent.
  void finalize(Cycles end_time);

  /// Human-readable report of the run's violations to `out` (stderr in the
  /// runner). Includes the failing run/seed name for reproduction.
  void report(std::string_view run_name, std::FILE* out) const;

 private:
  struct WordMeta {
    std::uint32_t interval = 0;
    std::int16_t writer = kInitWriter;
  };
  struct PageShadow {
    std::vector<std::byte> data;
    std::vector<WordMeta> meta;
  };
  /// Per-(node, page) mirror of the fetch/notice race bookkeeping.
  struct NodePage {
    std::uint32_t notices = 0;
    std::uint32_t fetch_notices = 0;
    bool fetching = false;
  };
  struct LifeTrack {
    std::uint64_t created = 0;
    std::uint64_t applied = 0;
  };
  struct BarrierEpoch {
    svm::VClock merged;
    int arrived = 0;
    int exited = 0;
  };

  [[nodiscard]] PageShadow& shadow(svm::PageId p);
  [[nodiscard]] NodePage& node_page(NodeId n, svm::PageId p);
  [[nodiscard]] BarrierEpoch& epoch_at(std::uint64_t e);
  [[nodiscard]] bool visible(NodeId reader, const svm::VClock& vc,
                             const WordMeta& m) const noexcept {
    return m.writer == kInitWriter || m.writer == reader ||
           vc.covers(m.writer, m.interval);
  }
  void add(Kind k, Cycles t, NodeId n, svm::PageId page, std::string detail);

  Config cfg_;
  svm::AddressSpace* space_;
  int nodes_;
  Mutation mutation_ = Mutation::kNone;
  /// Serializes the on_* hooks in PDES mode (see the file comment);
  /// uncontended in serial runs.
  mutable std::mutex mu_;

  std::vector<std::unique_ptr<PageShadow>> pages_;
  std::vector<std::vector<NodePage>> per_node_;  // [node][page]
  /// Interval index the next write of each node belongs to (see
  /// on_flush_cut: the cut, not the clock advance, is the boundary).
  std::vector<std::uint32_t> open_interval_;
  /// True between a node's flush cut and the vc advance that closes the
  /// interval (flush propagation is asynchronous; releases per node are
  /// serialized so at most one cut is ever pending).
  std::vector<bool> cut_pending_;
  std::vector<svm::VClock> last_vc_;
  std::map<int, svm::VClock> last_release_;  // per lock id
  std::map<std::pair<NodeId, svm::PageId>, LifeTrack> diffs_;
  std::map<std::pair<NodeId, svm::PageId>, LifeTrack> updates_;
  std::deque<BarrierEpoch> epochs_;
  std::uint64_t epoch_base_ = 0;
  std::vector<std::uint64_t> arrive_count_;
  std::vector<std::uint64_t> exit_count_;

  std::vector<Violation> violations_;
  std::uint64_t violation_count_ = 0;
  std::uint64_t checked_words_ = 0;
  std::uint64_t racy_words_skipped_ = 0;
  std::uint64_t words_written_ = 0;
  std::uint64_t transitions_ = 0;
  bool finalized_ = false;
};

}  // namespace svmsim::check

// Hook macro: compiled out entirely under -DSVMSIM_CHECK=OFF; otherwise a
// null check on the Simulator's checker pointer before any argument is
// evaluated. `sim` is an engine::Simulator&, `method` a Checker member.
//
//   SVMSIM_CHECK_HOOK(*sim_, on_inval_notice, self_, page);
#ifndef SVMSIM_CHECK_DISABLED
#define SVMSIM_CHECK_HOOK(sim, method, ...)                                  \
  do {                                                                       \
    if (::svmsim::check::Checker* svmsim_ck_ = (sim).checker();              \
        svmsim_ck_ != nullptr) {                                             \
      svmsim_ck_->method(__VA_ARGS__);                                       \
    }                                                                        \
  } while (0)
/// True when the run's checker is active with the given fault injection
/// selected (e.g. SVMSIM_CHECK_MUTATION_IS(*sim_, kLostDiff)). Constant
/// false when the checker is compiled out, so mutation branches fold away.
#define SVMSIM_CHECK_MUTATION_IS(sim, kind)                                  \
  ((sim).checker() != nullptr &&                                             \
   (sim).checker()->mutation() == ::svmsim::check::Mutation::kind)
#else
namespace svmsim::check::detail {
/// Never defined: swallows hook arguments as an unevaluated operand so OFF
/// builds generate no code but variables still count as used.
template <class... Ts>
int unused_hook_args(Ts&&...);
}  // namespace svmsim::check::detail
#define SVMSIM_CHECK_HOOK(sim, method, ...)                  \
  ((void)sizeof(((void)(sim),                                \
                 ::svmsim::check::detail::unused_hook_args(__VA_ARGS__))))
#define SVMSIM_CHECK_MUTATION_IS(sim, kind) false
#endif
