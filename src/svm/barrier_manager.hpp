// Global barrier rendezvous state for the hierarchical barrier (paper §2):
// processors synchronize inside their SMP node through hardware first; the
// last arriver becomes the node representative, flushes, and exchanges
// synchronous messages (no interrupts) with the manager node.
#pragma once

#include <memory>
#include <vector>

#include "engine/simulator.hpp"
#include "net/message.hpp"
#include "svm/vclock.hpp"

namespace svmsim::svm {

class BarrierHub {
 public:
  BarrierHub(engine::Simulator& sim, int nodes)
      : sim_(&sim), nodes_(nodes), arrivals_sem_(sim, 0) {}

  [[nodiscard]] int nodes() const noexcept { return nodes_; }
  [[nodiscard]] NodeId manager() const noexcept { return 0; }

  /// Called at the manager node when a kBarrierArrive message lands.
  void arrive(net::Message&& m) {
    arrivals_.push_back(std::move(m));
    arrivals_sem_.release();
  }

  /// Manager rep: wait for the other `nodes-1` arrivals. `out` is a caller
  /// scratch buffer; its storage and arrivals_'s ping-pong across episodes,
  /// so steady-state barriers allocate nothing.
  engine::Task<void> collect(std::vector<net::Message>& out) {
    for (int i = 0; i < nodes_ - 1; ++i) {
      co_await arrivals_sem_.acquire();
    }
    out.clear();
    out.swap(arrivals_);
  }

 private:
  engine::Simulator* sim_;
  int nodes_;
  engine::Semaphore arrivals_sem_;
  std::vector<net::Message> arrivals_;
};

}  // namespace svmsim::svm
