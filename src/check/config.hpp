// Consistency-checker configuration: the runtime gate for the shadow oracle.
//
// Kept free of any checker machinery so core/params.hpp can embed a Config
// in SimConfig without pulling the whole check subsystem into every
// translation unit (the same layering as src/trace/config.hpp). See
// src/check/checker.hpp for the oracle itself and docs/checking.md for the
// user-facing story.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace svmsim::check {

/// Fault-injection classes used to verify the checker itself (the mutation
/// smoke tests): each one plants a specific protocol bug, and the suite
/// asserts the checker catches every class. Selected via the
/// SVMSIM_CHECK_MUTATION environment variable; only honoured when the
/// checker is compiled in *and* enabled for the run.
enum class Mutation : std::uint8_t {
  kNone = 0,
  kStaleRead,      ///< refetches of an invalidated page keep the stale bytes
  kLostDiff,       ///< drop one diff per release flush (HLRC) / every
                   ///< automatic-update run (AURC)
  kSkippedNotice,  ///< drop the last page from every invalidation batch
  /// Schedule-dependent: like kSkippedNotice, but the drop only triggers
  /// after some NI has observed two same-cycle arrivals in descending
  /// source order — an order the baseline (time, key)-sorted wire band can
  /// never produce, so single-seed runs are provably clean and only the
  /// schedule explorer (src/explore/) can surface the bug. The mutation-kill
  /// matrix uses it to prove the explorer adds coverage, not just runs.
  kReorderSensitiveNotice,
};

[[nodiscard]] std::string_view to_string(Mutation m) noexcept;

/// Parse a SVMSIM_CHECK_MUTATION value ("", "none", "stale_read",
/// "lost_diff", "skipped_notice", "reorder_sensitive_notice"). Returns
/// nullopt on an unknown name.
[[nodiscard]] std::optional<Mutation> parse_mutation(std::string_view name);

/// Per-run checker settings, carried inside SimConfig. The checker never
/// affects simulated time: two runs differing only in Config produce
/// identical RunResults.
struct Config {
  bool enabled = false;  ///< create a Checker for this run

  /// When a run with an (in-memory or file) tracer detects a violation, the
  /// runner additionally dumps the captured SVMTRACE here so the failure can
  /// be replayed through tools/trace2chrome. Empty = no violation dump.
  std::string trace_path;

  bool operator==(const Config&) const = default;
};

}  // namespace svmsim::check
