// A lazy coroutine task type used for every simulated process.
//
// Simulated processors, protocol handlers and NI firmware are all written as
// coroutines returning Task<T>. Awaiting a Task starts it; when the callee
// finishes it transfers control back to the awaiter symmetrically, so deep
// protocol call chains cost no stack and no event-queue traffic. Only real
// simulated waiting (delays, resources, message arrival) goes through the
// event queue.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <thread>
#include <utility>

#include "engine/frame_pool.hpp"

namespace svmsim::engine {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
#ifndef SVMSIM_NO_FRAME_POOL
  // Coroutine frames are the single hottest allocation in the simulator;
  // recycle them through the thread-local FramePool (see frame_pool.hpp).
  static void* operator new(std::size_t n) { return FramePool::tls().allocate(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    FramePool::tls().deallocate(p, n);
  }
#endif

  std::coroutine_handle<> continuation;  // resumed when this task completes
  std::exception_ptr error;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto& promise = h.promise();
      if (promise.continuation) return promise.continuation;
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

/// Lazy task: does nothing until awaited (or detached via spawn()).
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        handle.promise().continuation = cont;
        return handle;  // start the child task
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
        return std::move(*p.value);
      }
    };
    assert(handle_ && "awaiting an empty Task");
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;

  friend struct promise_type;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
      }
    };
    assert(handle_ && "awaiting an empty Task");
    return Awaiter{handle_};
  }

  // spawn() needs to adopt the handle and manage the frame itself.
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;

  friend struct promise_type;
};

namespace detail {

/// Intrusive link base for a spawned (detached) coroutine frame; the handle
/// lets FrameRegistry::destroy_all() destroy the frame through its promise.
struct FrameNode {
  FrameNode* prev = nullptr;
  FrameNode* next = nullptr;
  std::coroutine_handle<> handle{};
};

}  // namespace detail

/// Tracks the live spawned coroutines of one simulation partition.
///
/// Detached frames used to thread themselves on a bare thread_local list,
/// which silently corrupted both lists when a frame spawned on one thread
/// completed (and so unlinked itself) on another — exactly what the PDES
/// mode does when a Machine is built on the caller's thread and run on
/// partition worker threads. Each promise now records the registry that was
/// current at spawn time and always unlinks from *that* registry; a debug
/// owner-thread assert enforces that link/unlink only ever happen on the
/// thread the registry is currently bound to, so a cross-thread release is
/// a loud assert instead of silent list corruption
/// (tests/test_partition.cpp has the regression).
///
/// Threading contract: a registry is single-threaded at any instant. Bind it
/// to a thread with bind_to_this_thread() only at quiescent points (before a
/// run, at window barriers, after workers join) — ownership transfers, it is
/// never shared.
class FrameRegistry {
 public:
  FrameRegistry() noexcept { bind_to_this_thread(); }
  FrameRegistry(const FrameRegistry&) = delete;
  FrameRegistry& operator=(const FrameRegistry&) = delete;

  /// The per-thread default registry (serial mode and tests).
  static FrameRegistry& tls() noexcept {
    thread_local FrameRegistry reg;
    return reg;
  }

  /// The override slot: when non-null, spawn() registers frames here
  /// instead of in tls(). Installed via ScopedFrameRegistry.
  static FrameRegistry*& current_slot() noexcept {
    thread_local FrameRegistry* cur = nullptr;
    return cur;
  }

  /// Registry new spawns land in on this thread.
  static FrameRegistry& current() noexcept {
    FrameRegistry* cur = current_slot();
    return cur != nullptr ? *cur : tls();
  }

  /// Transfer ownership to the calling thread. Only legal while no other
  /// thread can touch this registry (see the threading contract above).
  void bind_to_this_thread() noexcept {
#ifndef NDEBUG
    owner_ = std::this_thread::get_id();
#endif
  }

  void link(detail::FrameNode* n) noexcept {
    assert(owner_ == std::this_thread::get_id() &&
           "frame spawned off its registry's owning thread");
    n->next = head_;
    if (head_ != nullptr) head_->prev = n;
    head_ = n;
  }

  void unlink(detail::FrameNode* n) noexcept {
    assert(owner_ == std::this_thread::get_id() &&
           "frame released off its registry's owning thread");
    if (n->prev != nullptr) {
      n->prev->next = n->next;
    } else {
      head_ = n->next;
    }
    if (n->next != nullptr) n->next->prev = n->prev;
  }

  /// Destroy every spawned coroutine still suspended in this registry. Call
  /// only while the simulation is being torn down (after the event queues
  /// are cleared, before the objects the frames reference die): the frames
  /// never run again, only their destructors do.
  void destroy_all() noexcept {
    while (head_ != nullptr) head_->handle.destroy();
  }

  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }

 private:
  detail::FrameNode* head_ = nullptr;
#ifndef NDEBUG
  std::thread::id owner_{};
#endif
};

/// RAII: route spawn() on this thread into `reg` for the current scope.
class ScopedFrameRegistry {
 public:
  explicit ScopedFrameRegistry(FrameRegistry& reg) noexcept
      : prev_(std::exchange(FrameRegistry::current_slot(), &reg)) {}
  ~ScopedFrameRegistry() { FrameRegistry::current_slot() = prev_; }
  ScopedFrameRegistry(const ScopedFrameRegistry&) = delete;
  ScopedFrameRegistry& operator=(const ScopedFrameRegistry&) = delete;

 private:
  FrameRegistry* prev_;
};

namespace detail {

/// Self-destroying top-level coroutine used by spawn(). Live frames are
/// threaded on their FrameRegistry so Machine teardown can destroy loops
/// and blocked processes that never complete (NIC service loops, workloads
/// parked on a sync object when a run is abandoned); the frames
/// transitively own their child Task frames, which release pooled refs and
/// other resources through ordinary destructors.
struct Detached {
  struct promise_type : FrameNode {
#ifndef SVMSIM_NO_FRAME_POOL
    static void* operator new(std::size_t n) {
      return FramePool::tls().allocate(n);
    }
    static void operator delete(void* p, std::size_t n) noexcept {
      FramePool::tls().deallocate(p, n);
    }
#endif
    FrameRegistry* registry;

    promise_type() noexcept : registry(&FrameRegistry::current()) {
      handle = std::coroutine_handle<promise_type>::from_promise(*this);
      registry->link(this);
    }
    ~promise_type() { registry->unlink(this); }

    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() {
      // A simulated process leaked an exception: that is a bug in the
      // simulator or an application kernel, never a recoverable condition.
      std::terminate();
    }
  };
};

inline Detached drive(Task<void> task) { co_await std::move(task); }

}  // namespace detail

/// Start `task` as an independent simulated process. The coroutine frame
/// frees itself on completion and is tracked by the thread's current
/// FrameRegistry until then.
inline void spawn(Task<void> task) { detail::drive(std::move(task)); }

/// Destroy every spawned coroutine still suspended in this thread's current
/// registry. See FrameRegistry::destroy_all() for the teardown contract.
inline void destroy_lingering_frames() noexcept {
  FrameRegistry::current().destroy_all();
}

}  // namespace svmsim::engine
