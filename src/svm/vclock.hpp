// Vector timestamps over node intervals, the partial order of lazy release
// consistency. Entry `v[n]` is the index of the latest interval of node `n`
// whose write notices this node has applied.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/types.hpp"

namespace svmsim::svm {

class VClock {
 public:
  VClock() = default;
  explicit VClock(int nodes) : v_(static_cast<std::size_t>(nodes), 0) {}

  [[nodiscard]] int size() const noexcept { return static_cast<int>(v_.size()); }

  [[nodiscard]] std::uint32_t get(NodeId n) const {
    return v_[static_cast<std::size_t>(n)];
  }
  void set(NodeId n, std::uint32_t val) {
    v_[static_cast<std::size_t>(n)] = val;
  }
  std::uint32_t advance(NodeId n) { return ++v_[static_cast<std::size_t>(n)]; }

  /// True if this clock has seen interval `interval` of node `n`.
  [[nodiscard]] bool covers(NodeId n, std::uint32_t interval) const {
    return get(n) >= interval;
  }
  /// True if this clock dominates `o` component-wise.
  [[nodiscard]] bool covers(const VClock& o) const;

  /// Component-wise maximum.
  void merge(const VClock& o);

  [[nodiscard]] bool operator==(const VClock& o) const = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint32_t> v_;
};

}  // namespace svmsim::svm
