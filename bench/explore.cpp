// Schedule exploration driver (docs/exploration.md): enumerate alternative
// wire-delivery / interrupt-dispatch interleavings of one small simulation
// point, running the consistency checker and end-of-run validation as the
// oracle on every branch — a model checker for the protocol stack, with the
// simulator itself as the state-space generator.
//
// Modes:
//   (default)             explore: DFS over the choice tree, report states /
//                         pruning / violations. Deterministic for a fixed
//                         flag set.
//   --record=<file>       run the baseline schedule once, write its decision
//                         log as a replay file.
//   --replay=<file>       re-execute one recorded schedule byte-identically
//                         and report its outcome. Unusable files (missing,
//                         truncated, corrupt, wrong version, wrong config
//                         fingerprint) exit kExitBadSchedule with a
//                         diagnostic naming the reason.
//
// Flags (beyond the shared ones):
//   --app=<name>            default stress-micro@1
//   --procs=N --ppn=N       cluster size (default 2 nodes x 1 proc)
//   --protocol=hlrc|aurc    default hlrc
//   --interrupt=fixed|round-robin|polling
//   --page-bytes=N          small pages spread tiny arrays across pages
//   --mode=full|dependent   branching policy (default full)
//   --no-hb-prune           disable happens-before refinement (dependent)
//   --no-irq-choices        wire decisions only
//   --max-states=N          exploration budget (default 4096)
//   --stop-on-violation     stop at the first failing schedule
//   --save-violation=<file> write the first failing schedule as a replay file
//   --expect-states=N       exit 1 unless exactly N states were explored
//   --expect-violations=N   exit 1 unless exactly N violating runs were seen
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "explore/explorer.hpp"
#include "harness/cli.hpp"

namespace {

using namespace svmsim;

int fail_usage(const char* argv0, const std::string& msg) {
  std::fprintf(stderr, "%s: %s\n", argv0, msg.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* argv0 = argc > 0 ? argv[0] : "explore";
  harness::Cli cli(argc, argv);

  const std::string app = cli.get_or("app", "stress-micro@1");
  const int ppn = static_cast<int>(cli.get_int("ppn", 1));
  if (ppn < 1) return fail_usage(argv0, "--ppn must be >= 1");
  const long procs = cli.get_int("procs", 2L * ppn);
  const int total =
      bench::checked_total_procs(argv0, "--procs", procs, ppn);

  SimConfig cfg = bench::base_config();
  cfg.comm.total_procs = total;
  cfg.comm.procs_per_node = ppn;
  cfg.comm.page_bytes =
      static_cast<std::uint32_t>(cli.get_int("page-bytes", 256));
  const std::string proto = cli.get_or("protocol", "hlrc");
  if (proto == "hlrc") {
    cfg.comm.protocol = Protocol::kHLRC;
  } else if (proto == "aurc") {
    cfg.comm.protocol = Protocol::kAURC;
  } else {
    return fail_usage(argv0, "unknown --protocol: " + proto);
  }
  const std::string irq = cli.get_or("interrupt", "fixed");
  if (irq == "fixed") {
    cfg.comm.interrupt_scheme = InterruptScheme::kFixedProcessor;
  } else if (irq == "round-robin") {
    cfg.comm.interrupt_scheme = InterruptScheme::kRoundRobin;
  } else if (irq == "polling") {
    cfg.comm.interrupt_scheme = InterruptScheme::kPolling;
  } else {
    return fail_usage(argv0, "unknown --interrupt: " + irq);
  }
  // Longer flight times widen the windows in which independent deliveries
  // are co-pending, i.e. grow the choice tree; the canonical exhaustive
  // config raises this so even a two-node machine overlaps its channels.
  cfg.arch.wire_latency_cycles =
      static_cast<Cycles>(cli.get_int("wire-latency", 100));
  // The oracle: every explored run is checked and validated.
  cfg.check.enabled = true;

  explore::ExploreConfig xcfg;
  const std::string mode = cli.get_or("mode", "full");
  if (mode == "full") {
    xcfg.branching = explore::Branching::kFull;
  } else if (mode == "dependent") {
    xcfg.branching = explore::Branching::kDependent;
  } else {
    return fail_usage(argv0, "unknown --mode: " + mode);
  }
  xcfg.hb_prune = !cli.has("no-hb-prune");
  xcfg.irq_choices = !cli.has("no-irq-choices");
  xcfg.max_states =
      static_cast<std::uint64_t>(cli.get_int("max-states", 4096));
  xcfg.stop_on_violation = cli.has("stop-on-violation");

  explore::Explorer ex(app, apps::Scale::kTiny, cfg, xcfg);

  if (const auto path = cli.get("replay")) {
    explore::Schedule sched;
    const explore::DecodeError err =
        explore::load_file(*path, ex.fingerprint(), sched);
    if (err != explore::DecodeError::kOk) {
      std::fprintf(stderr, "%s: cannot replay %s: %s\n", argv0, path->c_str(),
                   std::string(to_string(err)).c_str());
      return bench::kExitBadSchedule;
    }
    const explore::RunOutcome out = ex.run_schedule(sched);
    std::printf("replay %s: decisions=%zu time=%llu validated=%d "
                "violations=%llu%s%s\n",
                path->c_str(), out.schedule.size(),
                static_cast<unsigned long long>(out.result.time),
                out.result.validated ? 1 : 0,
                static_cast<unsigned long long>(out.result.check_violations),
                out.error ? " error=" : "", out.error_message.c_str());
    const bool bad = out.error || !out.result.validated ||
                     out.result.check_violations > 0;
    return bad ? 1 : 0;
  }

  if (const auto path = cli.get("record")) {
    const explore::RunOutcome out = ex.run_schedule({});
    if (!explore::save_file(*path, out.schedule, ex.fingerprint())) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv0, path->c_str());
      return 1;
    }
    std::printf("recorded %s: decisions=%zu time=%llu validated=%d "
                "violations=%llu\n",
                path->c_str(), out.schedule.size(),
                static_cast<unsigned long long>(out.result.time),
                out.result.validated ? 1 : 0,
                static_cast<unsigned long long>(out.result.check_violations));
    return out.error || !out.result.validated ? 1 : 0;
  }

  const explore::ExploreResult res = ex.explore();
  std::printf(
      "explore %s procs=%d ppn=%d %s %s mode=%s%s%s: states=%llu "
      "decisions=%llu branches=%llu redundant=%llu sleep_pruned=%llu "
      "independent=%llu hb_pruned=%llu max_depth=%llu violations=%llu%s\n",
      app.c_str(), total, ppn, proto.c_str(), irq.c_str(),
      to_string(xcfg.branching), xcfg.hb_prune ? "" : " no-hb",
      xcfg.irq_choices ? "" : " no-irq",
      static_cast<unsigned long long>(res.states),
      static_cast<unsigned long long>(res.decisions),
      static_cast<unsigned long long>(res.branches),
      static_cast<unsigned long long>(res.redundant),
      static_cast<unsigned long long>(res.sleep_pruned),
      static_cast<unsigned long long>(res.independent_pruned),
      static_cast<unsigned long long>(res.hb_pruned),
      static_cast<unsigned long long>(res.max_depth),
      static_cast<unsigned long long>(res.violations),
      res.budget_exhausted ? " (budget exhausted)" : "");

  if (const auto path = cli.get("save-violation")) {
    if (res.violating.empty()) {
      std::fprintf(stderr, "%s: no violating schedule to save\n", argv0);
      return 1;
    }
    if (!explore::save_file(*path, res.violating.front(),
                            ex.fingerprint())) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv0, path->c_str());
      return 1;
    }
    std::printf("violating schedule (%zu decisions) written to %s\n",
                res.violating.front().size(), path->c_str());
  }

  if (const auto want = cli.get("expect-states")) {
    if (res.states != static_cast<std::uint64_t>(std::stoll(*want))) {
      std::fprintf(stderr, "%s: expected %s states, explored %llu\n", argv0,
                   want->c_str(),
                   static_cast<unsigned long long>(res.states));
      return 1;
    }
  }
  if (const auto want = cli.get("expect-violations")) {
    if (res.violations != static_cast<std::uint64_t>(std::stoll(*want))) {
      std::fprintf(stderr, "%s: expected %s violations, found %llu\n", argv0,
                   want->c_str(),
                   static_cast<unsigned long long>(res.violations));
      return 1;
    }
  }
  return 0;
}
