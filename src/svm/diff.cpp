#include "svm/diff.hpp"

#include <cassert>
#include <cstring>

namespace svmsim::svm {

void compute_diff(PageId page, std::span<const std::byte> current,
                  std::span<const std::byte> twin, PageDiff& out) {
  assert(current.size() == twin.size());
  assert(current.size() % kDiffWordBytes == 0);

  out.clear();
  out.page = page;
  const std::size_t words = current.size() / kDiffWordBytes;
  std::size_t run_start = 0;
  bool in_run = false;
  for (std::size_t w = 0; w <= words; ++w) {
    const bool differs =
        w < words &&
        std::memcmp(current.data() + w * kDiffWordBytes,
                    twin.data() + w * kDiffWordBytes, kDiffWordBytes) != 0;
    if (differs && !in_run) {
      run_start = w;
      in_run = true;
    } else if (!differs && in_run) {
      DiffRun run;
      run.offset = static_cast<std::uint32_t>(run_start * kDiffWordBytes);
      run.len = static_cast<std::uint32_t>((w - run_start) * kDiffWordBytes);
      run.data_off = static_cast<std::uint32_t>(out.data.size());
      out.data.insert(out.data.end(), current.begin() + run.offset,
                      current.begin() + run.offset + run.len);
      out.runs.push_back(run);
      in_run = false;
    }
  }
}

void apply_diff(std::span<std::byte> target, const PageDiff& diff) {
  for (const auto& r : diff.runs) {
    assert(r.offset + r.len <= target.size());
    assert(r.data_off + r.len <= diff.data.size());
    std::memcpy(target.data() + r.offset, diff.data.data() + r.data_off,
                r.len);
  }
}

Cycles diff_cycles(const ArchParams& arch, std::uint64_t words_compared,
                   std::uint64_t words_included) {
  return arch.diff_compare_cycles_per_word * words_compared +
         arch.diff_include_cycles_per_word * words_included;
}

Cycles diff_create_cycles(const ArchParams& arch, const PageDiff& diff,
                          std::uint32_t page_bytes) {
  return diff_cycles(arch, page_bytes / kDiffWordBytes,
                     diff.modified_bytes() / kDiffWordBytes);
}

Cycles diff_apply_cycles(const ArchParams& arch, const PageDiff& diff) {
  const std::uint64_t words = diff.modified_bytes() / kDiffWordBytes;
  return diff_cycles(arch, words, words);
}

}  // namespace svmsim::svm
