# Empty dependencies file for extra_interrupt_schemes.
# This may be replaced when dependencies are built.
