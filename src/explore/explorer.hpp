// The schedule explorer: stateless DFS over the engine's choice tree.
//
// The engine is deterministic except where it consults the ChoiceHook
// (engine/choice.hpp): wire-band arbitration, interrupt victim selection,
// poll slip. The explorer exploits that by *re-executing from t=0* for
// every branch — no state snapshotting, no engine surgery. Each run is
// driven by a forced prefix of choices; past the prefix the hook takes the
// engine's defaults while logging, at every free decision, the full
// alternative set and the live sleep set. After the run, the driver forks
// one child per eligible alternative: the child's prefix is the parent's
// taken log up to that decision plus the alternative, and its sleep set is
// the decision's snapshot plus the default choice plus earlier siblings
// (classic sleep sets — an action already explored from this state need
// not lead the re-exploration). Deliveries to a sleeping channel's
// destination wake it, preserving soundness.
//
// The same machinery gives record/replay for free: run_schedule({}) records
// the baseline decision log; run_schedule(log) replays it byte-identically;
// any prefix the DFS produced is a valid --replay file. Determinism of the
// whole exploration (state counts, violation order) follows from the DFS
// visiting branches in decision/alternative order.
//
// See docs/exploration.md for the contract and the independence argument.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"
#include "explore/config.hpp"
#include "explore/schedule.hpp"

namespace svmsim::explore {

/// One run's worth of record/replay output.
struct RunOutcome {
  RunResult result;
  Schedule schedule;  ///< full decision log (forced prefix + free defaults)
  bool error = false;          ///< run threw (deadlock / cycle budget)
  std::string error_message;
};

struct ExploreResult {
  std::uint64_t states = 0;      ///< complete runs executed
  std::uint64_t decisions = 0;   ///< hook consultations, summed over runs
  std::uint64_t branches = 0;    ///< children forked
  std::uint64_t sleep_pruned = 0;        ///< alternatives suppressed (slept)
  /// Runs cut short by sleep sets: some action in the run's free region was
  /// asleep when it executed, so the continuation only re-derives traces an
  /// earlier sibling already covered — no branches are forked past that
  /// point. (The run itself still executes to completion; the engine cannot
  /// abandon a simulation mid-flight.)
  std::uint64_t redundant = 0;
  std::uint64_t independent_pruned = 0;  ///< kDependent: different-dst skips
  std::uint64_t hb_pruned = 0;   ///< kDependent+hb_prune: causal-order skips
  std::uint64_t violations = 0;  ///< runs with oracle/validate/run failures
  std::uint64_t max_depth = 0;   ///< longest schedule seen
  bool budget_exhausted = false;
  /// Up to max_violations_kept failing schedules, in discovery order; each
  /// replays its failure byte-identically.
  std::vector<Schedule> violating;
};

/// Drives exploration of one (app, config) point. The config must be
/// serial (par_cores == 1); checking should be enabled if the oracle or
/// happens-before pruning is wanted.
class Explorer {
 public:
  Explorer(std::string app, apps::Scale scale, SimConfig cfg,
           ExploreConfig xcfg);

  /// The config fingerprint embedded in schedule files for this point.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

  /// Exhaust the choice tree (subject to budgets). Deterministic: two calls
  /// on equal inputs produce identical results.
  [[nodiscard]] ExploreResult explore();

  /// Execute one run under `forced` (empty = the baseline schedule),
  /// recording the full decision log. Throws std::runtime_error if the
  /// forced choices diverge from the decisions the engine actually offers
  /// (wrong kind, unavailable alternative, or leftover forced tail).
  [[nodiscard]] RunOutcome run_schedule(const Schedule& forced);

  struct RunLog;  // explorer.cpp internal; public so the hook can see it

 private:
  RunOutcome run_internal(const Schedule& forced,
                          const std::vector<std::uint64_t>& sleep,
                          RunLog* log, ExploreResult* tally);

  std::string app_;
  apps::Scale scale_;
  SimConfig cfg_;
  ExploreConfig xcfg_;
  std::uint64_t fingerprint_;
};

/// The fingerprint binding a schedule file to its (app, machine) point:
/// fnv1a over the app name and every parameter that shapes the decision
/// stream. Exposed so bench/explore can diagnose fingerprint mismatches.
[[nodiscard]] std::uint64_t config_fingerprint(const std::string& app,
                                               const SimConfig& cfg);

}  // namespace svmsim::explore
