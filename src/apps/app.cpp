#include "apps/app.hpp"

namespace svmsim::apps {

std::string to_string(Scale s) {
  switch (s) {
    case Scale::kTiny:
      return "tiny";
    case Scale::kSmall:
      return "small";
    case Scale::kLarge:
      return "large";
  }
  return "?";
}

}  // namespace svmsim::apps
