file(REMOVE_RECURSE
  "CMakeFiles/fig05_host_overhead.dir/fig05_host_overhead.cpp.o"
  "CMakeFiles/fig05_host_overhead.dir/fig05_host_overhead.cpp.o.d"
  "fig05_host_overhead"
  "fig05_host_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_host_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
