# Empty compiler generated dependencies file for fig08_io_bandwidth.
# This may be replaced when dependencies are built.
