// 2D/3D torus with dimension-order (e-cube) routing.
//
// Each node owns a router with two directed ring links per dimension (+ and
// - contend independently) plus the host's injection/ejection pair. A
// packet walks dimension 0 first, then 1, then 2, always taking the shorter
// way around the ring (ties break toward +), so the hop count is exactly
// the Manhattan distance with wraparound plus the two host links — the
// analytic property tests/test_topology.cpp checks.
#pragma once

#include "topo/topology.hpp"

namespace svmsim::topo {

class Torus final : public Topology {
 public:
  /// Throws std::invalid_argument when the extents do not multiply to
  /// `nodes` or the diameter exceeds Topology::kMaxHops.
  Torus(const ArchParams& arch, int nodes, std::array<int, 3> dims,
        const SimOfNode& sim_of_node);

  [[nodiscard]] const char* name() const noexcept override { return "torus"; }
  void route(NodeId src, NodeId dst, RouteBuf& out) const noexcept override;

 private:
  // Per-node link slots: 0 inject, 1 eject, 2+2d the +direction ring link
  // of dimension d, 3+2d the -direction one. Links are created in node
  // major order, so id(node, slot) = node*stride_ + slot.
  [[nodiscard]] LinkId id(int node, int slot) const noexcept {
    return static_cast<LinkId>(node * stride_ + slot);
  }

  std::array<int, 3> dims_;
  int ndims_;
  int stride_;
};

}  // namespace svmsim::topo
