// Processor local-clock accounting: charge/drain, handler stealing and the
// wait-overlap forgiveness rule.
#include <gtest/gtest.h>

#include "core/processor.hpp"
#include "engine/simulator.hpp"
#include "memsys/memory_bus.hpp"

namespace svmsim {
namespace {

struct Fixture {
  SimConfig cfg;
  engine::Simulator sim;
  memsys::MemoryBus bus{sim, cfg.arch};
  Stats stats{1};
  Processor proc{sim, cfg, 0, 0, 0, bus, stats.proc(0)};
};

TEST(Processor, ChargeAccumulatesLocally) {
  Fixture f;
  f.proc.charge(TimeCat::kCompute, 100);
  EXPECT_EQ(f.sim.now(), 0u);              // no global time passed
  EXPECT_EQ(f.proc.local_now(), 100u);     // but the local clock advanced
  EXPECT_EQ(f.stats.proc(0).get(TimeCat::kCompute), 100u);
}

TEST(Processor, DrainPushesPendingToGlobalClock) {
  Fixture f;
  f.proc.charge(TimeCat::kCompute, 250);
  engine::spawn([](Fixture& fx) -> engine::Task<void> {
    co_await fx.proc.drain();
  }(f));
  f.sim.run_until_idle();
  EXPECT_EQ(f.sim.now(), 250u);
  EXPECT_EQ(f.proc.local_now(), 250u);
}

TEST(Processor, HandlerStealsAreInjectedAtDrain) {
  Fixture f;
  bool handled = false;
  f.proc.service_interrupt([&]() -> engine::Task<void> {
    handled = true;
    co_await f.sim.delay(300);
  });
  f.sim.run_until_idle();
  ASSERT_TRUE(handled);
  // App now drains 100 cycles of compute; the handler's occupancy
  // (2*interrupt_cost + dispatch + 300) is injected on top.
  f.proc.charge(TimeCat::kCompute, 100);
  engine::spawn([](Fixture& fx) -> engine::Task<void> {
    co_await fx.proc.drain();
  }(f));
  const Cycles handler_occupancy =
      2 * f.cfg.comm.interrupt_cost + f.cfg.arch.handler_dispatch_cycles + 300;
  f.sim.run_until_idle();
  EXPECT_EQ(f.proc.local_now(), f.sim.now());
  EXPECT_EQ(f.stats.proc(0).get(TimeCat::kHandler), handler_occupancy);
  EXPECT_GE(f.sim.now(), 100u + handler_occupancy);
}

TEST(Processor, StealsOverlappingWaitsAreForgiven) {
  Fixture f;
  engine::spawn([](Fixture& fx) -> engine::Task<void> {
    // Start a long wait; a handler arrives in the middle of it.
    const Cycles t0 = co_await fx.proc.wait_begin();
    co_await fx.sim.delay(10000);
    fx.proc.wait_end(TimeCat::kBarrierWait, t0);
    co_await fx.proc.drain();
  }(f));
  f.sim.queue().schedule_at(1000, [&] {
    f.proc.service_interrupt([&]() -> engine::Task<void> {
      co_await f.sim.delay(500);
    });
  });
  f.sim.run_until_idle();
  // The handler ran entirely inside the wait: no extra time beyond it.
  EXPECT_EQ(f.sim.now(), 10000u);
  EXPECT_EQ(f.stats.proc(0).get(TimeCat::kBarrierWait), 10000u);
  EXPECT_EQ(f.stats.proc(0).get(TimeCat::kHandler), 0u);
}

TEST(Processor, ConcurrentHandlersSerializeOnOneCpu) {
  Fixture f;
  std::vector<Cycles> done;
  for (int i = 0; i < 2; ++i) {
    f.proc.service_interrupt([&]() -> engine::Task<void> {
      co_await f.sim.delay(1000);
      done.push_back(f.sim.now());
    });
  }
  f.sim.run_until_idle();
  ASSERT_EQ(done.size(), 2u);
  const Cycles per_handler =
      2 * f.cfg.comm.interrupt_cost + f.cfg.arch.handler_dispatch_cycles + 1000;
  EXPECT_EQ(done[1] - done[0], per_handler);
}

TEST(Processor, PolledServiceSkipsInterruptCost) {
  Fixture f;
  Cycles finished = 0;
  f.proc.service_polled([&]() -> engine::Task<void> {
    co_await f.sim.delay(100);
    finished = f.sim.now();
  });
  f.sim.run_until_idle();
  EXPECT_EQ(finished, f.cfg.comm.poll_check_cost +
                          f.cfg.arch.handler_dispatch_cycles + 100);
}

}  // namespace
}  // namespace svmsim
