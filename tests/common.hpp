// Shared helpers for the test suite.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "apps/app.hpp"
#include "core/machine.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"
#include "engine/task.hpp"

namespace svmsim::test {

/// A Workload assembled from lambdas, for protocol-level integration tests.
class LambdaWorkload : public Workload {
 public:
  using SetupFn = std::function<void(Machine&)>;
  using BodyFn = std::function<engine::Task<void>(Machine&, ProcId)>;
  using ValidateFn = std::function<bool(Machine&)>;

  LambdaWorkload(std::string name, SetupFn setup, BodyFn body,
                 ValidateFn validate = nullptr)
      : name_(std::move(name)),
        setup_(std::move(setup)),
        body_(std::move(body)),
        validate_(std::move(validate)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  void setup(Machine& m) override {
    if (setup_) setup_(m);
  }
  engine::Task<void> body(Machine& m, ProcId pid) override {
    return body_(m, pid);
  }
  bool validate(Machine& m) override {
    return validate_ ? validate_(m) : true;
  }

 private:
  std::string name_;
  SetupFn setup_;
  BodyFn body_;
  ValidateFn validate_;
};

/// A 16-processor, 4-per-node config at the paper's achievable point.
inline SimConfig achievable_config() {
  SimConfig cfg;
  cfg.comm = CommParams::achievable();
  return cfg;
}

inline SimConfig config_with(int total_procs, int procs_per_node,
                             Protocol proto = Protocol::kHLRC) {
  SimConfig cfg = achievable_config();
  cfg.comm.total_procs = total_procs;
  cfg.comm.procs_per_node = procs_per_node;
  cfg.comm.protocol = proto;
  return cfg;
}

}  // namespace svmsim::test
