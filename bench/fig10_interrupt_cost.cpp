// Figure 10: effects of interrupt cost on application performance (the
// paper's dominant parameter).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);
  bench::run_figure(
      "fig10", "intr", {0, 250, 500, 1000, 2500, 5000},
      [](SimConfig& c, double v) {
        c.comm.interrupt_cost = static_cast<Cycles>(v);
      },
      opt, sweep);
  return 0;
}
