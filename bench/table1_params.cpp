// Table 1: ranges, achievable and best values of the communication
// parameters under consideration.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);

  harness::Table t({"Parameter", "Range", "Achievable", "Best"});
  t.add_row({"Host overhead (cycles)", "0 - 2000", "500", "0"});
  t.add_row({"I/O bus bandwidth (MB/s per MHz)", "0.125 - 2.0", "0.5", "2.0"});
  t.add_row({"NI occupancy (cycles/packet)", "0 - 4000", "1000", "0"});
  t.add_row({"Interrupt cost (cycles, each way)", "0 - 5000", "500", "0"});
  t.add_row({"Page size (bytes)", "1K - 16K", "4096", "-"});
  t.add_row({"Processors per node (16 total)", "1 - 8", "4", "-"});
  std::printf("== Table 1: communication parameter ranges ==\n");
  t.print();
  harness::maybe_write_csv(t, opt.csv_dir, "table1");

  const CommParams ach = CommParams::achievable();
  std::printf(
      "\nAt a nominal 200 MHz processor the achievable point is: host "
      "overhead %llu cycles, I/O bus %.0f MB/s, NI occupancy %llu cycles "
      "(%.1f us), null interrupt %llu cycles.\n",
      static_cast<unsigned long long>(ach.host_overhead),
      ach.io_bus_mb_per_mhz * 200.0,
      static_cast<unsigned long long>(ach.ni_occupancy),
      static_cast<double>(ach.ni_occupancy) / 200.0,
      static_cast<unsigned long long>(2 * ach.interrupt_cost));
  return 0;
}
