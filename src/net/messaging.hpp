// Per-node messaging layer ("fast messages" of the paper §2).
//
// Semantics (paper §3):
//  * Sends are asynchronous: the host pays only `host_overhead` to post (the
//    caller charges that; this layer models queueing and transfer).
//  * Requests are synchronous RPCs: the requester blocks until the reply is
//    deposited in its memory; replies never interrupt.
//  * Unsolicited requests interrupt a processor of the destination node; the
//    interrupt dispatch policy is owned by the node (fixed proc-0 or
//    round-robin).
//
// Outstanding RPCs live in a slot pool: an rpc id is (sequence << 16) | slot,
// each slot owns a reusable Trigger, and completed slots go back on a free
// list — where the old unordered_map<id, unique_ptr<...>> paid two
// allocations per RPC.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/stats.hpp"
#include "engine/simulator.hpp"
#include "engine/task.hpp"
#include "net/message.hpp"
#include "net/nic.hpp"

namespace svmsim::net {

class NodeComm {
 public:
  NodeComm(engine::Simulator& sim, NodeId self, std::vector<Nic*> nics,
           Counters& counters);

  NodeComm(const NodeComm&) = delete;
  NodeComm& operator=(const NodeComm&) = delete;

  /// Post a message (request or one-way). Completes once the NI accepted it.
  engine::Task<void> send(Message m);

  /// Synchronous RPC: send `m` and suspend until the correlated reply
  /// arrives (possibly much later, e.g. a delayed lock grant).
  engine::Task<Message> rpc(Message m);

  /// Issue a request without waiting; pair with `await_reply` so several
  /// RPCs (e.g. diff flushes to multiple homes) can overlap.
  std::uint64_t rpc_post(Message& m);
  engine::Task<Message> await_reply(std::uint64_t id);

  /// Send `rep` as the reply to `req` (copies the correlation id).
  engine::Task<void> reply(const Message& req, Message rep);

  /// Handler for interrupting requests; runs in interrupt context on a
  /// processor chosen by `interrupt_dispatch`.
  std::function<engine::Task<void>(Message)> request_handler;

  /// Handler for non-interrupting, non-reply messages (barrier traffic,
  /// AURC markers). Must not block.
  std::function<void(Message&&)> direct_handler;

  /// Runs on every delivered message before reply correlation and interrupt
  /// dispatch, in exact arrival order — the receive side of the protocol's
  /// clock-delta edge caches (expansion back to full clocks). Must not
  /// block; may rewrite the body.
  std::function<void(Message&)> on_deliver;

  /// Install `fn` as the enqueue hook on every NI of this node (the send
  /// side of the clock-delta edge caches; see Nic::on_enqueue).
  void set_on_enqueue(std::function<void(Message&)> fn);

  /// Provided by the node: runs `body` in interrupt context (victim
  /// selection, interrupt cost, per-processor serialization, time stealing).
  std::function<void(std::function<engine::Task<void>()>)> interrupt_dispatch;

  [[nodiscard]] NodeId id() const noexcept { return self_; }

  /// The NI that carries traffic between this node and `dst`: fixed per
  /// node pair so each direction's traffic stays FIFO.
  [[nodiscard]] Nic& nic_for(NodeId dst) {
    return *nics_[static_cast<std::size_t>(self_ + dst) % nics_.size()];
  }
  /// Register the AURC hardware-update sink on every NI of this node.
  void set_on_update(std::function<void(const Message&)> fn);

  /// True once any of this node's NIs has seen a same-cycle descending-
  /// source arrival pair (Nic::reorder_witnessed) — the trigger of the
  /// kReorderSensitiveNotice fault injection, consulted by the protocol
  /// layer's invalidation path.
  [[nodiscard]] bool reorder_witnessed() const noexcept {
    for (const Nic* n : nics_) {
      if (n->reorder_witnessed()) return true;
    }
    return false;
  }

 private:
  void dispatch(Message&& m);

  struct PendingReply {
    explicit PendingReply(engine::Simulator& sim) : arrived(sim) {}
    engine::Trigger arrived;
    Message reply;
    bool in_use = false;
  };

  static constexpr std::uint64_t kSlotBits = 16;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  engine::Simulator* sim_;
  NodeId self_;
  std::vector<Nic*> nics_;
  Counters* counters_;
  std::uint64_t next_rpc_seq_ = 1;
  std::deque<PendingReply> slots_;  // deque: stable refs across slot growth
  std::vector<std::size_t> free_slots_;
};

}  // namespace svmsim::net
