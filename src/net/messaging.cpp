#include "net/messaging.hpp"

#include <cassert>
#include <utility>

namespace svmsim::net {

NodeComm::NodeComm(engine::Simulator& sim, NodeId self,
                   std::vector<Nic*> nics, Counters& counters)
    : sim_(&sim), self_(self), nics_(std::move(nics)), counters_(&counters) {
  assert(!nics_.empty());
  for (Nic* nic : nics_) {
    nic->on_message = [this](Message&& m) { dispatch(std::move(m)); };
  }
}

void NodeComm::set_on_update(std::function<void(const Message&)> fn) {
  for (Nic* nic : nics_) {
    nic->on_update = fn;
  }
}

void NodeComm::set_on_enqueue(std::function<void(Message&)> fn) {
  for (Nic* nic : nics_) {
    nic->on_enqueue = fn;
  }
}

engine::Task<void> NodeComm::send(Message m) {
  m.src = self_;
  Nic& nic = nic_for(m.dst);
  co_await nic.post(std::move(m));
}

std::uint64_t NodeComm::rpc_post(Message& m) {
  std::size_t slot;
  if (free_slots_.empty()) {
    slot = slots_.size();
    slots_.emplace_back(*sim_);
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  assert(slot < (1ull << kSlotBits) && "too many concurrent RPCs");
  PendingReply& s = slots_[slot];
  assert(!s.in_use);
  s.in_use = true;
  const std::uint64_t id = (next_rpc_seq_++ << kSlotBits) | slot;
  m.rpc_id = id;
  return id;
}

engine::Task<Message> NodeComm::await_reply(std::uint64_t id) {
  const std::size_t slot = id & kSlotMask;
  PendingReply& s = slots_[slot];
  assert(s.in_use && "await_reply without rpc_post");
  co_await s.arrived.wait();
  Message reply = std::move(s.reply);
  s.arrived.reset();
  s.in_use = false;
  free_slots_.push_back(slot);
  co_return reply;
}

engine::Task<Message> NodeComm::rpc(Message m) {
  const std::uint64_t id = rpc_post(m);
  co_await send(std::move(m));
  co_return co_await await_reply(id);
}

engine::Task<void> NodeComm::reply(const Message& req, Message rep) {
  rep.dst = req.src;
  rep.rpc_id = req.rpc_id;
  assert(is_reply(rep.type) && "replies must use a reply message type");
  co_await send(std::move(rep));
}

void NodeComm::dispatch(Message&& m) {
  if (on_deliver) on_deliver(m);
  if (is_reply(m.type)) {
    const std::size_t slot = m.rpc_id & kSlotMask;
    assert(slot < slots_.size() && slots_[slot].in_use &&
           "reply with no outstanding request");
    PendingReply& s = slots_[slot];
    s.reply = std::move(m);
    s.arrived.fire();
    return;
  }
  if (interrupts_host(m.type)) {
    // Whether this costs an interrupt or a poll tick is the node's policy;
    // the dispatch callback does the accounting.
    assert(request_handler && interrupt_dispatch);
    interrupt_dispatch(
        [this, msg = std::move(m)]() mutable -> engine::Task<void> {
          return request_handler(std::move(msg));
        });
    return;
  }
  assert(direct_handler && "unhandled direct message");
  direct_handler(std::move(m));
}

}  // namespace svmsim::net
