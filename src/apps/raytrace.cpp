// Raytrace: Whitted-style ray tracer over a read-mostly shared scene with
// per-processor task queues and stealing (the paper's version is modified
// from SPLASH-2 to drop an unnecessary global lock and implement task
// queues better for SVM/SMP; we implement that structure directly).
// Inherent communication is small: the scene replicates on first use and
// only the image tiles and queue heads move between nodes (paper §4.2).
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/factories.hpp"

namespace svmsim::apps {

namespace {

struct Sphere {
  double cx, cy, cz, r;
  double cr, cg, cb;   // colour
  double reflect;      // reflectivity in [0,1]
};

struct Hit {
  double t = 1e30;
  int sphere = -1;  // -1: none, -2: floor plane
};

struct V3 {
  double x, y, z;
};
inline V3 operator+(V3 a, V3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
inline V3 operator-(V3 a, V3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
inline V3 operator*(V3 a, double s) { return {a.x * s, a.y * s, a.z * s}; }
inline double dot(V3 a, V3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
inline V3 norm(V3 a) {
  const double l = std::sqrt(dot(a, a)) + 1e-300;
  return a * (1.0 / l);
}

constexpr double kFloorY = -1.0;
const V3 kLight{-4.0, 6.0, -2.0};

Hit intersect(const std::vector<Sphere>& scene, V3 o, V3 d,
              std::uint64_t& ops) {
  Hit h;
  for (std::size_t s = 0; s < scene.size(); ++s) {
    const Sphere& sp = scene[s];
    const V3 oc = o - V3{sp.cx, sp.cy, sp.cz};
    const double b = dot(oc, d);
    const double c = dot(oc, oc) - sp.r * sp.r;
    const double disc = b * b - c;
    ops += 20;
    if (disc < 0) continue;
    const double t = -b - std::sqrt(disc);
    if (t > 1e-6 && t < h.t) {
      h.t = t;
      h.sphere = static_cast<int>(s);
    }
  }
  if (std::abs(d.y) > 1e-9) {
    const double t = (kFloorY - o.y) / d.y;
    ops += 8;
    if (t > 1e-6 && t < h.t) {
      h.t = t;
      h.sphere = -2;
    }
  }
  return h;
}

V3 shade(const std::vector<Sphere>& scene, V3 o, V3 d, int depth,
         std::uint64_t& ops) {
  const Hit h = intersect(scene, o, d, ops);
  if (h.sphere == -1) {
    const double g = 0.5 * (d.y + 1.0);
    return {0.2 + 0.3 * g, 0.3 + 0.3 * g, 0.5 + 0.4 * g};  // sky gradient
  }
  const V3 p = o + d * h.t;
  V3 n;
  V3 base;
  double reflect;
  if (h.sphere == -2) {
    n = {0, 1, 0};
    const bool check =
        (static_cast<long>(std::floor(p.x)) + static_cast<long>(std::floor(p.z))) & 1;
    base = check ? V3{0.9, 0.9, 0.9} : V3{0.15, 0.15, 0.15};
    reflect = 0.1;
  } else {
    const Sphere& sp = scene[static_cast<std::size_t>(h.sphere)];
    n = norm(p - V3{sp.cx, sp.cy, sp.cz});
    base = {sp.cr, sp.cg, sp.cb};
    reflect = sp.reflect;
  }
  const V3 l = norm(kLight - p);
  double diff = std::max(0.0, dot(n, l));
  // Shadow ray.
  const Hit sh = intersect(scene, p + n * 1e-4, l, ops);
  if (sh.sphere != -1) diff *= 0.2;
  V3 col = base * (0.15 + 0.85 * diff);
  ops += 30;
  if (depth > 0 && reflect > 0) {
    const V3 rd = d - n * (2.0 * dot(d, n));
    const V3 rc = shade(scene, p + n * 1e-4, norm(rd), depth - 1, ops);
    col = col * (1.0 - reflect) + rc * reflect;
    ops += 20;
  }
  return col;
}

std::uint32_t pack(V3 c) {
  auto q = [](double v) {
    return static_cast<std::uint32_t>(
        std::clamp(v, 0.0, 1.0) * 255.0 + 0.5);
  };
  return q(c.x) | (q(c.y) << 8) | (q(c.z) << 16) | 0xFF000000u;
}

/// Render one square tile; returns the op count for compute charging.
std::uint64_t render_tile(const std::vector<Sphere>& scene, int width,
                          int height, int tile, int tile_size,
                          std::uint32_t* out) {
  const int tiles_x = width / tile_size;
  const int tx = (tile % tiles_x) * tile_size;
  const int ty = (tile / tiles_x) * tile_size;
  std::uint64_t ops = 0;
  for (int y = 0; y < tile_size; ++y) {
    for (int x = 0; x < tile_size; ++x) {
      const double u = (tx + x + 0.5) / width * 2.0 - 1.0;
      const double v = 1.0 - (ty + y + 0.5) / height * 2.0;
      const V3 dir = norm({u, v, 1.0});
      const V3 col = shade(scene, {0.0, 0.5, -3.0}, dir, 1, ops);
      out[y * tile_size + x] = pack(col);
      ops += 10;
    }
  }
  return ops;
}

class RaytraceApp final : public Application {
 public:
  explicit RaytraceApp(Scale scale) : Application(scale) {
    switch (scale) {
      case Scale::kTiny:
        width_ = 32;
        break;
      case Scale::kSmall:
        width_ = 64;
        break;
      case Scale::kLarge:
        width_ = 128;
        break;
    }
    height_ = width_;
    tiles_ = (width_ / kTile) * (height_ / kTile);
  }

  [[nodiscard]] std::string name() const override { return "raytrace"; }

  void setup(Machine& mach) override {
    P_ = mach.total_procs();
    Rng rng(0x7A11u);
    scene_.clear();
    for (int s = 0; s < 24; ++s) {
      scene_.push_back(Sphere{rng.uniform(-3, 3), rng.uniform(-0.6, 2.0),
                              rng.uniform(1.5, 7.0), rng.uniform(0.25, 0.7),
                              rng.uniform(0.2, 1.0), rng.uniform(0.2, 1.0),
                              rng.uniform(0.2, 1.0), rng.uniform(0.0, 0.6)});
    }
    shm_scene_ = SharedArray<Sphere>::alloc(mach, scene_.size(),
                                            Distribution::fixed(0));
    for (std::size_t s = 0; s < scene_.size(); ++s) {
      shm_scene_.debug_put(mach, s, scene_[s]);
    }
    image_ = SharedArray<std::uint32_t>::alloc(
        mach, static_cast<std::size_t>(width_) * height_,
        Distribution::block());

    // Task queues: per-processor item arrays plus page-padded head/tail.
    items_ = SharedArray<std::int32_t>::alloc(
        mach, static_cast<std::size_t>(tiles_), Distribution::block());
    const std::size_t stride =
        mach.config().comm.page_bytes / sizeof(std::int32_t);
    ht_stride_ = stride;
    heads_ = SharedArray<std::int32_t>::alloc(
        mach, stride * static_cast<std::size_t>(P_), Distribution::fixed(0));
    const int ppn = mach.config().comm.procs_per_node;
    for (int p = 0; p < P_; ++p) {
      mach.space().set_home_range(
          heads_.addr(stride * static_cast<std::size_t>(p)),
          stride * sizeof(std::int32_t), p / ppn);
    }
    // Deal tiles contiguously: queue p owns items [p*T/P, (p+1)*T/P).
    for (int t = 0; t < tiles_; ++t) {
      items_.debug_put(mach, static_cast<std::size_t>(t), t);
    }
    for (int p = 0; p < P_; ++p) {
      // head at slot 0, tail at slot 1 of the processor's padded region.
      heads_.debug_put(mach, stride * static_cast<std::size_t>(p),
                       tiles_ * p / P_);
      heads_.debug_put(mach, stride * static_cast<std::size_t>(p) + 1,
                       tiles_ * (p + 1) / P_);
    }

    // Sequential reference image.
    expected_.assign(static_cast<std::size_t>(width_) * height_, 0);
    std::vector<std::uint32_t> tilebuf(kTile * kTile);
    for (int t = 0; t < tiles_; ++t) {
      render_tile(scene_, width_, height_, t, kTile, tilebuf.data());
      blit(expected_.data(), t, tilebuf.data());
    }
  }

  engine::Task<void> body(Machine& mach, ProcId pid) override {
    Shm shm(mach, pid);
    // Replicate the scene once (read through SVM so pages fault in).
    std::vector<Sphere> scene(scene_.size());
    co_await shm_scene_.get_block(shm, 0, scene.data(), scene.size());

    std::vector<std::uint32_t> tilebuf(kTile * kTile);
    std::vector<std::uint32_t> rowbuf(kTile);
    for (;;) {
      const int tile = co_await take_task(shm, pid);
      if (tile < 0) break;
      const std::uint64_t ops =
          render_tile(scene, width_, height_, tile, kTile, tilebuf.data());
      shm.compute(kWorkScale * ops);
      // Write the tile into the shared image row by row.
      const int tiles_x = width_ / kTile;
      const int tx = (tile % tiles_x) * kTile;
      const int ty = (tile / tiles_x) * kTile;
      for (int y = 0; y < kTile; ++y) {
        std::copy_n(tilebuf.data() + y * kTile, kTile, rowbuf.data());
        co_await image_.put_block(
            shm, static_cast<std::size_t>(ty + y) * width_ + tx, rowbuf.data(),
            kTile);
      }
    }
  }

  bool validate(Machine& mach) override {
    for (std::size_t i = 0; i < expected_.size(); ++i) {
      if (image_.debug_get(mach, i) != expected_[i]) return false;
    }
    return true;
  }

 private:
  /// Per-element work multiplier: our kernels charge only marker costs for
  /// the arithmetic they model; this constant folds in the private-memory
  /// instruction stream of the real SPLASH-2 code so the compute-to-
  /// communication ratio lands in the paper's regime (see DESIGN.md).
  static constexpr Cycles kWorkScale = 6;
  static constexpr int kTile = 8;
  static constexpr int kQueueLockBase = 4096;

  void blit(std::uint32_t* img, int tile, const std::uint32_t* buf) const {
    const int tiles_x = width_ / kTile;
    const int tx = (tile % tiles_x) * kTile;
    const int ty = (tile / tiles_x) * kTile;
    for (int y = 0; y < kTile; ++y) {
      std::copy_n(buf + y * kTile, kTile,
                  img + static_cast<std::size_t>(ty + y) * width_ + tx);
    }
  }

  /// Pop from the own queue, else steal from the first non-empty victim.
  engine::Task<int> take_task(Shm& shm, ProcId pid) {
    for (int attempt = 0; attempt < P_; ++attempt) {
      const int victim = (pid + attempt) % P_;
      const std::size_t slot = ht_stride_ * static_cast<std::size_t>(victim);
      co_await shm.lock(kQueueLockBase + victim);
      const std::int32_t head = co_await heads_.get(shm, slot);
      const std::int32_t tail = co_await heads_.get(shm, slot + 1);
      if (head < tail) {
        // Own queue pops from the front; thieves take from the back.
        std::int32_t idx;
        if (attempt == 0) {
          idx = head;
          co_await heads_.put(shm, slot, head + 1);
        } else {
          idx = tail - 1;
          co_await heads_.put(shm, slot + 1, tail - 1);
        }
        const std::int32_t tile =
            co_await items_.get(shm, static_cast<std::size_t>(idx));
        co_await shm.unlock(kQueueLockBase + victim);
        shm.compute(kWorkScale * 20);
        co_return tile;
      }
      co_await shm.unlock(kQueueLockBase + victim);
      shm.compute(kWorkScale * 10);
    }
    co_return -1;  // every queue is empty
  }

  int width_ = 32;
  int height_ = 32;
  int tiles_ = 16;
  int P_ = 1;
  std::size_t ht_stride_ = 1024;
  std::vector<Sphere> scene_;
  SharedArray<Sphere> shm_scene_;
  SharedArray<std::uint32_t> image_;
  SharedArray<std::int32_t> items_;
  SharedArray<std::int32_t> heads_;
  std::vector<std::uint32_t> expected_;
};

}  // namespace

std::unique_ptr<Application> make_raytrace(Scale scale) {
  return std::make_unique<RaytraceApp>(scale);
}

}  // namespace svmsim::apps
