file(REMOVE_RECURSE
  "CMakeFiles/extra_breakdowns.dir/extra_breakdowns.cpp.o"
  "CMakeFiles/extra_breakdowns.dir/extra_breakdowns.cpp.o.d"
  "extra_breakdowns"
  "extra_breakdowns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_breakdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
