#include "memsys/cache.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace svmsim::memsys {
namespace {

CacheParams small_dm{1024, 1, 64, 1};   // 16 sets, direct mapped
CacheParams small_2w{1024, 2, 64, 8};   // 8 sets, 2-way

TEST(Cache, MissThenHit) {
  Cache c(small_dm);
  EXPECT_FALSE(c.lookup(0));
  c.fill(0, false);
  EXPECT_TRUE(c.lookup(0));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, DirectMappedConflict) {
  Cache c(small_dm);
  c.fill(0, false);
  // 16 sets x 64B lines: address 1024 maps to the same set as 0.
  auto victim = c.fill(1024, false);
  EXPECT_TRUE(victim.evicted);
  EXPECT_EQ(victim.line_addr, 0u);
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(1024));
}

TEST(Cache, TwoWayHoldsConflictPair) {
  Cache c(small_2w);
  c.fill(0, false);
  auto victim = c.fill(512, false);  // 8 sets: same set as 0
  EXPECT_FALSE(victim.evicted);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(512));
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(small_2w);
  c.fill(0, false);
  c.fill(512, false);
  EXPECT_TRUE(c.lookup(0));  // touch 0: now 512 is LRU
  auto victim = c.fill(1024, false);
  EXPECT_TRUE(victim.evicted);
  EXPECT_EQ(victim.line_addr, 512u);
  EXPECT_TRUE(c.contains(0));
}

TEST(Cache, DirtyEvictionReported) {
  Cache c(small_dm);
  c.fill(0, /*dirty=*/true);
  auto victim = c.fill(1024, false);
  EXPECT_TRUE(victim.evicted);
  EXPECT_TRUE(victim.dirty);
}

TEST(Cache, LookupCanMarkDirty) {
  Cache c(small_dm);
  c.fill(0, false);
  c.lookup(0, /*mark_dirty=*/true);
  auto victim = c.fill(1024, false);
  EXPECT_TRUE(victim.dirty);
}

TEST(Cache, InvalidateRangeDropsOnlyCoveredLines) {
  Cache c(small_2w);
  c.fill(0, true);
  c.fill(64, false);
  c.fill(256, false);
  c.invalidate_range(0, 128);
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.contains(64));
  EXPECT_TRUE(c.contains(256));
}

TEST(Cache, InvalidatedDirtyLineDoesNotWriteBack) {
  Cache c(small_dm);
  c.fill(0, true);
  c.invalidate_range(0, 64);
  auto victim = c.fill(1024, false);
  EXPECT_FALSE(victim.evicted);
}

// Property-style sweep: for any config, filling N distinct lines that map to
// distinct sets keeps all of them resident.
class CacheConfigTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CacheConfigTest, DistinctSetsDoNotConflict) {
  auto [size_kb, assoc, line] = GetParam();
  CacheParams p{static_cast<std::uint32_t>(size_kb * 1024),
                static_cast<std::uint32_t>(assoc),
                static_cast<std::uint32_t>(line), 1};
  Cache c(p);
  const std::uint32_t sets = c.sets();
  for (std::uint32_t s = 0; s < sets; ++s) {
    c.fill(static_cast<std::uint64_t>(s) * line, false);
  }
  for (std::uint32_t s = 0; s < sets; ++s) {
    EXPECT_TRUE(c.contains(static_cast<std::uint64_t>(s) * line));
  }
}

TEST_P(CacheConfigTest, AssociativityWaysFitInOneSet) {
  auto [size_kb, assoc, line] = GetParam();
  CacheParams p{static_cast<std::uint32_t>(size_kb * 1024),
                static_cast<std::uint32_t>(assoc),
                static_cast<std::uint32_t>(line), 1};
  Cache c(p);
  const std::uint64_t set_stride =
      static_cast<std::uint64_t>(c.sets()) * line;
  for (int w = 0; w < assoc; ++w) {
    c.fill(static_cast<std::uint64_t>(w) * set_stride, false);
  }
  for (int w = 0; w < assoc; ++w) {
    EXPECT_TRUE(c.contains(static_cast<std::uint64_t>(w) * set_stride));
  }
  // One more way evicts exactly one line.
  auto victim = c.fill(static_cast<std::uint64_t>(assoc) * set_stride, false);
  EXPECT_TRUE(victim.evicted);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CacheConfigTest,
    ::testing::Values(std::make_tuple(1, 1, 32), std::make_tuple(1, 2, 32),
                      std::make_tuple(4, 2, 64), std::make_tuple(16, 1, 64),
                      std::make_tuple(16, 4, 64), std::make_tuple(512, 2, 64),
                      std::make_tuple(64, 8, 128)));

}  // namespace
}  // namespace svmsim::memsys
