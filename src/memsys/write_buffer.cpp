#include "memsys/write_buffer.hpp"

#include <algorithm>

namespace svmsim::memsys {

void WriteBuffer::advance(Cycles now, std::vector<std::uint64_t>& retired) {
  // Complete any retirement whose finish time has passed, then keep
  // retiring while the policy says drain (occupancy >= retire_at) and the
  // clock allows. Back-to-back retirements chain from the previous
  // completion time, not from `now`.
  bool chained = false;
  while (!pending_.empty()) {
    if (draining_) {
      if (drain_done_ > now) return;  // in-flight retirement not done yet
      retired.push_back(pending_.front());
      pending_.pop_front();
      draining_ = false;
      chained = true;
      continue;
    }
    if (pending_.size() < retire_at_) return;  // below drain threshold
    draining_ = true;
    const Cycles start = chained ? drain_done_ : now;
    drain_done_ = start + retire_cost_;
    chained = false;
  }
}

Cycles WriteBuffer::push(std::uint64_t line_addr, Cycles now,
                         std::vector<std::uint64_t>& retired) {
  advance(now, retired);
  if (std::find(pending_.begin(), pending_.end(), line_addr) !=
      pending_.end()) {
    ++coalesced_;
    return 0;
  }
  Cycles stall = 0;
  if (pending_.size() >= entries_) {
    // Full: wait for the in-flight retirement (drain is guaranteed active
    // because entries_ >= retire_at_).
    if (!draining_) {
      draining_ = true;
      drain_done_ = std::max(drain_done_, now) + retire_cost_;
    }
    stall = drain_done_ > now ? drain_done_ - now : 0;
    retired.push_back(pending_.front());
    pending_.pop_front();
    draining_ = false;
    ++full_stalls_;
    advance(now + stall, retired);
  }
  pending_.push_back(line_addr);
  advance(now + stall, retired);
  return stall;
}

bool WriteBuffer::contains(std::uint64_t line_addr) const {
  return std::find(pending_.begin(), pending_.end(), line_addr) !=
         pending_.end();
}

}  // namespace svmsim::memsys
