// Per-application factory functions (one per TU).
#pragma once

#include <memory>

#include "apps/app.hpp"

namespace svmsim::apps {

std::unique_ptr<Application> make_fft(Scale scale);
std::unique_ptr<Application> make_lu(Scale scale);
std::unique_ptr<Application> make_ocean(Scale scale);
std::unique_ptr<Application> make_radix(Scale scale);
std::unique_ptr<Application> make_water_nsquared(Scale scale);
std::unique_ptr<Application> make_water_spatial(Scale scale);
std::unique_ptr<Application> make_barnes_rebuild(Scale scale);
std::unique_ptr<Application> make_barnes_space(Scale scale);
std::unique_ptr<Application> make_raytrace(Scale scale);
std::unique_ptr<Application> make_volrend(Scale scale);
/// Seed-deterministic data-race-free fuzz workload for the consistency
/// checker ("stress-gen", "stress-gen@<seed>"). See src/apps/stress_gen.cpp.
std::unique_ptr<Application> make_stress_gen(Scale scale, std::uint64_t seed);

/// Bounded-iteration micro profile of stress-gen ("stress-micro@<seed>"):
/// two rounds, a handful of cells/slots, one lock op per round — few enough
/// messages that the schedule explorer can exhaust every interleaving of a
/// tiny machine. Scale is accepted for registry uniformity and ignored.
std::unique_ptr<Application> make_stress_micro(Scale scale,
                                               std::uint64_t seed);

}  // namespace svmsim::apps
