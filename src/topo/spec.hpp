// Topology selection spec — the parsed form of the --topology CLI flag.
//
// Standalone (no dependency on the Topology interface) so core/params.hpp
// can embed a Spec in SimConfig without pulling in the engine headers.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace svmsim::topo {

enum class Kind : std::uint8_t {
  kLegacy = 0,  ///< the original contention-free crossbar code path
  kCrossbar,    ///< same machine, served by the topo::Crossbar backend
  kFatTree,     ///< k-ary fat tree, contended up/down links
  kTorus,       ///< 2D/3D torus, dimension-order routing, contended rings
};

/// Which interconnect a run simulates. kLegacy (the default) and kCrossbar
/// describe the same contention-free machine — the crossbar backend is
/// byte-identical to the legacy path (tools/topology_equivalence.sh) — while
/// fat tree and torus add link-level contention (docs/topology.md).
struct Spec {
  Kind kind = Kind::kLegacy;
  int fat_k = 0;                   ///< fat tree arity; even, in [2, 64]
  std::array<int, 3> dims{0, 0, 0};  ///< torus extents; dims[2] == 1 for 2D

  /// Parse "legacy", "crossbar", "fattree:<k>" or "torus:<X>x<Y>[x<Z>]".
  /// Rejects malformed specs (odd k, zero/negative dims, trailing junk)
  /// with nullopt; whether the spec fits a node count is checked separately
  /// (topo::fits) because the cluster size is a different flag.
  [[nodiscard]] static std::optional<Spec> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Spec&) const = default;
};

}  // namespace svmsim::topo
