// Token-lock protocol tests: mutual exclusion, local vs remote accounting,
// caching and recall behaviour.
#include <gtest/gtest.h>

#include "common.hpp"

namespace svmsim::test {
namespace {

using apps::Distribution;
using apps::SharedArray;
using apps::Shm;

TEST(Locks, MutualExclusionUnderContention) {
  SimConfig cfg = config_with(16, 4);
  SharedArray<int> in_cs;   // occupancy counter checked inside the CS
  bool exclusive = true;
  long entries = 0;

  LambdaWorkload w(
      "mutex-stress",
      [&](Machine& m) {
        in_cs = SharedArray<int>::alloc(m, 1, Distribution::fixed(0));
        in_cs.debug_put(m, 0, 0);
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        apps::Rng rng(static_cast<std::uint64_t>(pid) + 99);
        for (int it = 0; it < 8; ++it) {
          co_await shm.lock(7);
          const int inside = co_await in_cs.get(shm, 0);
          if (inside != 0) exclusive = false;
          co_await in_cs.put(shm, 0, 1);
          shm.compute(rng.below(4000));  // variable critical-section length
          co_await in_cs.put(shm, 0, 0);
          ++entries;
          co_await shm.unlock(7);
          shm.compute(rng.below(2000));
        }
        co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(exclusive);
  EXPECT_EQ(entries, 16 * 8);
  EXPECT_EQ(r.stats.counters().local_lock_acquires +
                r.stats.counters().remote_lock_acquires,
            16u * 8u);
}

TEST(Locks, UncontendedReacquireIsLocal) {
  // One processor repeatedly acquiring a lock homed on its own node never
  // sends a message after the first acquire.
  SimConfig cfg = config_with(4, 4);  // one node
  LambdaWorkload w(
      "local-reacquire", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        if (pid == 0) {
          for (int i = 0; i < 10; ++i) {
            co_await shm.lock(3);
            co_await shm.unlock(3);
          }
        }
        co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_EQ(r.stats.counters().local_lock_acquires, 10u);
  EXPECT_EQ(r.stats.counters().remote_lock_acquires, 0u);
}

TEST(Locks, TokenCachingMakesSameNodeHandoffsLocal) {
  SimConfig cfg = config_with(8, 4);  // two nodes
  LambdaWorkload w(
      "node-caching", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        // Only node 1's processors (pids 4-7) use the lock, which is homed
        // at node 0 (lock 0 % 2 == 0): one remote fetch, then local reuse.
        if (pid >= 4) {
          for (int i = 0; i < 5; ++i) {
            co_await shm.lock(0);
            shm.compute(500);
            co_await shm.unlock(0);
          }
        }
        co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_EQ(r.stats.counters().remote_lock_acquires, 1u);
  EXPECT_EQ(r.stats.counters().local_lock_acquires, 19u);
}

TEST(Locks, CrossNodePingPongIsRemote) {
  SimConfig cfg = config_with(2, 1);
  LambdaWorkload w(
      "ping-pong", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        for (int i = 0; i < 6; ++i) {
          co_await shm.lock(1);
          co_await shm.unlock(1);
          // Barrier forces strict alternation: the token must cross nodes
          // every round.
          co_await shm.barrier();
        }
      });
  auto r = run(w, cfg);
  EXPECT_GE(r.stats.counters().remote_lock_acquires, 6u);
}

TEST(Locks, ManyIndependentLocksProceedInParallel) {
  SimConfig cfg = config_with(16, 4);
  long done = 0;
  LambdaWorkload w(
      "independent-locks", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        for (int i = 0; i < 10; ++i) {
          co_await shm.lock(200 + pid);  // private lock per processor
          co_await shm.unlock(200 + pid);
          ++done;
        }
        co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_EQ(done, 160);
  EXPECT_TRUE(r.validated);
}

TEST(Locks, HomeNodeCanReacquireAfterRemoteUse) {
  SimConfig cfg = config_with(4, 1);
  std::vector<int> order;
  LambdaWorkload w(
      "token-return", nullptr,
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        for (int round = 0; round < 3; ++round) {
          // Processors take turns by round-robin phases.
          for (int turn = 0; turn < shm.nprocs(); ++turn) {
            if (turn == pid) {
              co_await shm.lock(4);
              order.push_back(pid);
              co_await shm.unlock(4);
            }
            co_await shm.barrier();
          }
        }
      });
  auto r = run(w, cfg);
  ASSERT_EQ(order.size(), 12u);
  for (int round = 0; round < 3; ++round) {
    for (int p = 0; p < 4; ++p) {
      EXPECT_EQ(order[static_cast<std::size_t>(round * 4 + p)], p);
    }
  }
  EXPECT_TRUE(r.validated);
}

}  // namespace
}  // namespace svmsim::test
