#include "svm/page_directory.hpp"

#include <gtest/gtest.h>

#include <set>

namespace svmsim::svm {
namespace {

TEST(PageDirectory, CollectsOnlyUncoveredIntervals) {
  PageDirectory dir(2);
  dir.record_interval(0, 1, {10, 11});
  dir.record_interval(0, 2, {12});
  dir.record_interval(1, 1, {20});

  VClock have(2);  // has seen nothing
  VClock target(2);
  target.set(0, 2);
  target.set(1, 1);

  std::multiset<PageId> pages;
  const auto n = dir.collect_notices(
      have, target, [&](PageId p, NodeId) { pages.insert(p); });
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(pages, (std::multiset<PageId>{10, 11, 12, 20}));
}

TEST(PageDirectory, SkipsCoveredIntervals) {
  PageDirectory dir(2);
  dir.record_interval(0, 1, {10});
  dir.record_interval(0, 2, {11});
  VClock have(2);
  have.set(0, 1);
  VClock target(2);
  target.set(0, 2);
  std::vector<PageId> pages;
  dir.collect_notices(have, target, [&](PageId p, NodeId) {
    pages.push_back(p);
  });
  EXPECT_EQ(pages, (std::vector<PageId>{11}));
}

TEST(PageDirectory, ReportsWriterNode) {
  PageDirectory dir(3);
  dir.record_interval(2, 1, {5});
  VClock have(3);
  VClock target(3);
  target.set(2, 1);
  NodeId writer = -1;
  dir.collect_notices(have, target, [&](PageId, NodeId w) { writer = w; });
  EXPECT_EQ(writer, 2);
}

TEST(PageDirectory, CountMatchesCollect) {
  PageDirectory dir(2);
  dir.record_interval(0, 1, {1, 2, 3});
  dir.record_interval(1, 1, {4});
  dir.record_interval(1, 2, {5, 6});
  VClock have(2);
  have.set(1, 1);
  VClock target(2);
  target.set(0, 1);
  target.set(1, 2);
  std::size_t collected = 0;
  dir.collect_notices(have, target, [&](PageId, NodeId) { ++collected; });
  EXPECT_EQ(dir.count_notices(have, target), collected);
  EXPECT_EQ(collected, 5u);
}

TEST(PageDirectory, IntervalsOf) {
  PageDirectory dir(2);
  EXPECT_EQ(dir.intervals_of(0), 0u);
  dir.record_interval(0, 1, {});
  dir.record_interval(0, 2, {});
  EXPECT_EQ(dir.intervals_of(0), 2u);
  EXPECT_EQ(dir.intervals_of(1), 0u);
}

TEST(PageDirectory, EmptyIntervalContributesNothing) {
  PageDirectory dir(1);
  dir.record_interval(0, 1, {});
  VClock have(1);
  VClock target(1);
  target.set(0, 1);
  EXPECT_EQ(dir.count_notices(have, target), 0u);
}

}  // namespace
}  // namespace svmsim::svm
