// Writing your own workload against the SVM API.
//
// This example implements a parallel histogram: every processor classifies
// its block of samples locally, then merges its partial histogram into the
// shared one under per-bucket-range locks — a miniature of the Water-style
// lock-accumulate pattern. It runs the same program under both protocols
// (HLRC software diffs, AURC automatic updates) and compares the traffic.
#include <cstdio>
#include <vector>

#include "apps/app.hpp"
#include "core/runner.hpp"

namespace {

using namespace svmsim;
using apps::Distribution;
using apps::SharedArray;
using apps::Shm;

class HistogramApp final : public Workload {
 public:
  static constexpr int kSamples = 1 << 15;
  static constexpr int kBuckets = 256;
  static constexpr int kRanges = 8;  // lock granularity

  [[nodiscard]] std::string name() const override { return "histogram"; }

  void setup(Machine& m) override {
    samples_ = SharedArray<std::uint32_t>::alloc(m, kSamples,
                                                 Distribution::block());
    hist_ = SharedArray<std::uint32_t>::alloc(m, kBuckets,
                                              Distribution::fixed(0));
    apps::Rng rng(2026);
    expected_.assign(kBuckets, 0);
    for (int i = 0; i < kSamples; ++i) {
      const auto v = static_cast<std::uint32_t>(rng.below(kBuckets));
      samples_.debug_put(m, static_cast<std::size_t>(i), v);
      ++expected_[v];
    }
    for (int b = 0; b < kBuckets; ++b) {
      hist_.debug_put(m, static_cast<std::size_t>(b), 0u);
    }
  }

  engine::Task<void> body(Machine& m, ProcId pid) override {
    Shm shm(m, pid);
    const int P = shm.nprocs();
    const int s0 = kSamples * pid / P;
    const int s1 = kSamples * (pid + 1) / P;

    // Local pass over this processor's block (reads its own home pages).
    std::vector<std::uint32_t> block(static_cast<std::size_t>(s1 - s0));
    co_await samples_.get_block(shm, static_cast<std::size_t>(s0),
                                block.data(), block.size());
    std::vector<std::uint32_t> partial(kBuckets, 0);
    for (std::uint32_t v : block) ++partial[v];
    shm.compute(static_cast<Cycles>(block.size()) * 6);

    // Merge under range locks (read-modify-write on shared pages).
    constexpr int kPerRange = kBuckets / kRanges;
    for (int r = 0; r < kRanges; ++r) {
      const int range = (pid + r) % kRanges;  // stagger to reduce contention
      co_await shm.lock(10 + range);
      for (int b = range * kPerRange; b < (range + 1) * kPerRange; ++b) {
        if (partial[static_cast<std::size_t>(b)] == 0) continue;
        const std::uint32_t cur =
            co_await hist_.get(shm, static_cast<std::size_t>(b));
        co_await hist_.put(shm, static_cast<std::size_t>(b),
                           cur + partial[static_cast<std::size_t>(b)]);
        shm.compute(4);
      }
      co_await shm.unlock(10 + range);
    }
    co_await shm.barrier();
  }

  bool validate(Machine& m) override {
    for (int b = 0; b < kBuckets; ++b) {
      if (hist_.debug_get(m, static_cast<std::size_t>(b)) !=
          expected_[static_cast<std::size_t>(b)]) {
        return false;
      }
    }
    return true;
  }

 private:
  SharedArray<std::uint32_t> samples_;
  SharedArray<std::uint32_t> hist_;
  std::vector<std::uint32_t> expected_;
};

}  // namespace

int main() {
  for (Protocol proto : {Protocol::kHLRC, Protocol::kAURC}) {
    SimConfig cfg;
    cfg.comm = CommParams::achievable();
    cfg.comm.protocol = proto;

    HistogramApp app;
    RunResult r = run(app, cfg);
    const Counters& c = r.stats.counters();
    std::printf(
        "%s: valid=%s time=%llu cycles | fetches=%llu diffs=%llu "
        "updates=%llu packets=%llu interrupts=%llu\n",
        to_string(proto).c_str(), r.validated ? "yes" : "NO",
        static_cast<unsigned long long>(r.time),
        static_cast<unsigned long long>(c.page_fetches),
        static_cast<unsigned long long>(c.diffs_created),
        static_cast<unsigned long long>(c.updates_sent),
        static_cast<unsigned long long>(c.packets_sent),
        static_cast<unsigned long long>(c.interrupts));
    if (!r.validated) return 1;
  }
  std::printf(
      "\nNote how AURC replaces diff messages with fine-grained update "
      "packets and drops the diff-apply interrupts at the home.\n");
  return 0;
}
