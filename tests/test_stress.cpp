// Randomized protocol stress: data-race-free programs generated from seeds.
//
// Two oracles run side by side. The host-side tally (LambdaWorkload tests
// below) predicts the final shared values exactly — any protocol race (lost
// update, stale read, resurrection) breaks the tally. The shadow consistency
// checker (src/check/) additionally validates *every* synchronized read
// online against happens-before, page state transitions against the
// protocol's legal-move table, and vector clocks against monotonicity — so a
// bug that happens to produce the right final bytes still fails. The
// CheckedStressMatrix drives the registered stress-gen fuzz app through the
// full protocol x ppn x page-size x seed cross product under the checker.
#include <gtest/gtest.h>

#include <vector>

#include "apps/registry.hpp"
#include "common.hpp"

namespace svmsim::test {
namespace {

using apps::Distribution;
using apps::Rng;
using apps::SharedArray;
using apps::Shm;

// ---------------------------------------------------------------------------
// Checked seed matrix over the stress-gen fuzz application
// ---------------------------------------------------------------------------

struct CheckedParam {
  std::uint64_t seed;
  Protocol proto;
  int ppn;
  std::uint32_t page_bytes;
};

class CheckedStressMatrix : public ::testing::TestWithParam<CheckedParam> {};

TEST_P(CheckedStressMatrix, FuzzRunIsExactAndViolationFree) {
  const CheckedParam sp = GetParam();
  SimConfig cfg = config_with(16, sp.ppn, sp.proto);
  cfg.comm.page_bytes = sp.page_bytes;
  cfg.check.enabled = true;

  auto app = apps::make_app("stress-gen@" + std::to_string(sp.seed),
                            apps::Scale::kTiny);
  const RunResult r = run(*app, cfg);
  EXPECT_TRUE(r.validated);
  EXPECT_EQ(r.check_violations, 0u);
}

std::vector<CheckedParam> checked_params() {
  std::vector<CheckedParam> v;
  for (Protocol proto : {Protocol::kHLRC, Protocol::kAURC}) {
    for (int ppn : {1, 4, 8}) {
      for (std::uint32_t pg : {1024u, 4096u, 16384u}) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
          v.push_back({seed, proto, ppn, pg});
        }
      }
    }
  }
  return v;
}

std::string checked_name(const ::testing::TestParamInfo<CheckedParam>& info) {
  const auto& p = info.param;
  return to_string(p.proto) + "_ppn" + std::to_string(p.ppn) + "_pg" +
         std::to_string(p.page_bytes) + "_seed" + std::to_string(p.seed);
}

INSTANTIATE_TEST_SUITE_P(Matrix, CheckedStressMatrix,
                         ::testing::ValuesIn(checked_params()), checked_name);

// ---------------------------------------------------------------------------
// Host-side tally oracle (pre-checker stress tests, kept as a second net)
// ---------------------------------------------------------------------------

struct StressParam {
  std::uint64_t seed;
  Protocol proto;
  int ppn;
  std::uint32_t page_bytes;
};

class StressMatrix : public ::testing::TestWithParam<StressParam> {};

TEST_P(StressMatrix, RandomDrfProgramIsExact) {
  const StressParam sp = GetParam();
  SimConfig cfg = config_with(16, sp.ppn, sp.proto);
  cfg.comm.page_bytes = sp.page_bytes;
  cfg.check.enabled = true;  // shadow oracle rides along at no extra setup

  constexpr int kSlots = 96;
  constexpr int kOpsPerProc = 60;
  SharedArray<long long> slots;
  SharedArray<double> churn;  // extra page traffic, values unchecked exactly
  std::vector<long long> applied(kSlots, 0);  // host-side tally

  LambdaWorkload w(
      "stress",
      [&](Machine& m) {
        slots = SharedArray<long long>::alloc(m, kSlots,
                                              Distribution::cyclic());
        churn = SharedArray<double>::alloc(m, 4096, Distribution::block());
        for (int i = 0; i < kSlots; ++i) slots.debug_put(m, i, 0LL);
        for (int i = 0; i < 4096; ++i) churn.debug_put(m, i, 0.0);
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        Rng rng(sp.seed * 977 + static_cast<std::uint64_t>(pid));
        const int P = shm.nprocs();
        for (int op = 0; op < kOpsPerProc; ++op) {
          const std::uint32_t kind = rng.below(10);
          if (kind < 6) {
            // Lock-protected RMW on a random slot.
            const int s = static_cast<int>(rng.below(kSlots));
            const long long delta = 1 + static_cast<long long>(rng.below(97));
            co_await shm.lock(1000 + s);
            const long long v = co_await slots.get(shm, s);
            co_await slots.put(shm, s, v + delta);
            applied[static_cast<std::size_t>(s)] += delta;
            co_await shm.unlock(1000 + s);
          } else if (kind < 8) {
            // Unsynchronized churn on this processor's own churn region
            // (single-writer, so still data-race-free).
            const int base = 4096 * pid / P;
            const int len = 4096 / P;
            std::vector<double> buf(static_cast<std::size_t>(len));
            for (int i = 0; i < len; ++i) {
              buf[static_cast<std::size_t>(i)] = op * 1000.0 + i;
            }
            co_await churn.put_block(shm, static_cast<std::size_t>(base),
                                     buf.data(), buf.size());
          } else if (kind < 9) {
            // Read someone else's churn region (stale values allowed; must
            // not crash or corrupt).
            const int victim = static_cast<int>(rng.below(
                static_cast<std::uint32_t>(P)));
            const int base = 4096 * victim / P;
            double x = 0;
            for (int i = 0; i < 8; ++i) {
              x += co_await churn.get(shm, static_cast<std::size_t>(base + i));
            }
            shm.compute(static_cast<Cycles>(x >= 0 ? 10 : 11));
          } else {
            shm.compute(rng.below(3000));
          }
        }
        co_await shm.barrier();
      },
      [&](Machine& m) {
        for (int s = 0; s < kSlots; ++s) {
          if (slots.debug_get(m, s) != applied[static_cast<std::size_t>(s)]) {
            ADD_FAILURE() << "slot " << s << ": got " << slots.debug_get(m, s)
                          << " want " << applied[static_cast<std::size_t>(s)];
            return false;
          }
        }
        return true;
      });

  auto r = run(w, cfg);
  EXPECT_TRUE(r.validated);
  EXPECT_EQ(r.check_violations, 0u);
}

std::vector<StressParam> stress_params() {
  std::vector<StressParam> v;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    v.push_back({seed, Protocol::kHLRC, 4, 4096});
  }
  v.push_back({7, Protocol::kHLRC, 1, 4096});
  v.push_back({8, Protocol::kHLRC, 8, 4096});
  v.push_back({9, Protocol::kHLRC, 4, 1024});
  v.push_back({10, Protocol::kHLRC, 4, 16384});
  v.push_back({11, Protocol::kAURC, 4, 4096});
  v.push_back({12, Protocol::kAURC, 8, 4096});
  v.push_back({13, Protocol::kAURC, 4, 1024});
  v.push_back({14, Protocol::kAURC, 1, 16384});
  return v;
}

std::string stress_name(const ::testing::TestParamInfo<StressParam>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_" + to_string(p.proto) + "_ppn" +
         std::to_string(p.ppn) + "_pg" + std::to_string(p.page_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressMatrix,
                         ::testing::ValuesIn(stress_params()), stress_name);

// Extreme-parameter robustness: the protocol must stay correct when the
// communication architecture is pathological, not just slow.
struct ExtremeParam {
  const char* name;
  std::function<void(SimConfig&)> mutate;
};

class ExtremeConfig : public ::testing::TestWithParam<int> {};

TEST_P(ExtremeConfig, AccumulationStaysExact) {
  static const std::vector<ExtremeParam> kExtremes = {
      {"free-everything", [](SimConfig& c) { c.comm = CommParams::best(); }},
      {"slow-interrupts",
       [](SimConfig& c) { c.comm.interrupt_cost = 20000; }},
      {"trickle-bandwidth",
       [](SimConfig& c) { c.comm.io_bus_mb_per_mhz = 0.03125; }},
      {"molasses-ni", [](SimConfig& c) { c.comm.ni_occupancy = 20000; }},
      {"huge-overhead", [](SimConfig& c) { c.comm.host_overhead = 10000; }},
      {"tiny-mtu",
       [](SimConfig& c) { c.arch.mtu_payload_bytes = 256; }},
      {"tiny-ni-queues",
       [](SimConfig& c) { c.arch.ni_queue_bytes = 8192; }},
  };
  SimConfig cfg = config_with(16, 4);
  kExtremes[static_cast<std::size_t>(GetParam())].mutate(cfg);
  cfg.check.enabled = true;

  constexpr int kSlots = 32;
  SharedArray<long long> acc;
  LambdaWorkload w(
      "extreme",
      [&](Machine& m) {
        acc = SharedArray<long long>::alloc(m, kSlots, Distribution::block());
        for (int i = 0; i < kSlots; ++i) acc.debug_put(m, i, 0LL);
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        for (int k = 0; k < 16; ++k) {
          const int t = (pid + k) % 16;
          co_await shm.lock(50 + t);
          for (int i = t * 2; i < t * 2 + 2; ++i) {
            const long long v = co_await acc.get(shm, i);
            co_await acc.put(shm, i, v + 1);
          }
          co_await shm.unlock(50 + t);
        }
        co_await shm.barrier();
      },
      [&](Machine& m) {
        for (int i = 0; i < kSlots; ++i) {
          if (acc.debug_get(m, i) != 16) return false;
        }
        return true;
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(r.validated);
  EXPECT_EQ(r.check_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Cases, ExtremeConfig, ::testing::Range(0, 7));

}  // namespace
}  // namespace svmsim::test
