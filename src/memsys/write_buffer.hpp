// Write buffer with a retire-at-K policy (paper §2).
//
// The L1 is write-through: every store enters the write buffer (coalescing
// on line granularity). Retirement toward the L2 begins once occupancy
// reaches `retire_at` and proceeds one entry per `retire_cost` cycles; the
// processor stalls only when the buffer is completely full. Draining is
// modeled analytically against the processor's local clock — retired lines
// are handed back to the caller so the L2/bus can account for them.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "engine/types.hpp"

namespace svmsim::memsys {

class WriteBuffer {
 public:
  WriteBuffer(std::uint32_t entries, std::uint32_t retire_at,
              Cycles retire_cost) noexcept
      : entries_(entries), retire_at_(retire_at), retire_cost_(retire_cost) {}

  /// Record a store to `line_addr` at local time `now`. Lines already
  /// buffered coalesce. Returns the stall cycles suffered (non-zero only
  /// when the buffer was full). Retired lines are appended to `retired`.
  Cycles push(std::uint64_t line_addr, Cycles now,
              std::vector<std::uint64_t>& retired);

  /// Advance the drain clock to `now`, appending retired lines.
  void advance(Cycles now, std::vector<std::uint64_t>& retired);

  /// Read-hit probe (a load can be satisfied from the write buffer).
  [[nodiscard]] bool contains(std::uint64_t line_addr) const;

  [[nodiscard]] std::size_t occupancy() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::uint64_t full_stalls() const noexcept {
    return full_stalls_;
  }
  [[nodiscard]] std::uint64_t coalesced() const noexcept { return coalesced_; }

 private:
  std::uint32_t entries_;
  std::uint32_t retire_at_;
  Cycles retire_cost_;
  std::deque<std::uint64_t> pending_;
  Cycles drain_done_ = 0;  // completion time of the in-flight retirement
  bool draining_ = false;
  std::uint64_t full_stalls_ = 0;
  std::uint64_t coalesced_ = 0;
};

}  // namespace svmsim::memsys
