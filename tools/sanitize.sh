#!/usr/bin/env bash
# Build the tier-1 test suite under ASan+UBSan and run it.
#
# The sanitizer build defines SVMSIM_POOL_PARANOID and SVMSIM_NO_FRAME_POOL
# (see the SVMSIM_SANITIZE option in CMakeLists.txt): object pools and the
# coroutine frame pool hand memory straight back to the allocator, so
# use-after-release bugs in the pooled protocol hot path surface as real
# heap-use-after-free reports instead of being masked by recycling.
#
#   tools/sanitize.sh [build-dir] [-- extra ctest args]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-sanitize}"
shift || true
[ "${1:-}" = "--" ] && shift

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSVMSIM_SANITIZE=address,undefined \
  -DSVMSIM_CHECK=ON
cmake --build "$build_dir" -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
# ASan instrumentation defeats the tail calls behind coroutine symmetric
# transfer, so long synchronous co_await chains consume real stack that the
# optimized build does not. Raise the limit rather than shrinking the tests.
ulimit -s unlimited 2>/dev/null || ulimit -s 1048576 || true
ctest --test-dir "$build_dir" --output-on-failure "$@"
