// Table 4: best, achievable and ideal speedups for each application.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);

  harness::Table t({"application", "best", "achievable", "ideal"});
  for (const auto& app : opt.app_names) {
    SimConfig best_cfg = bench::base_config();
    best_cfg.comm = CommParams::best();
    auto best = sweep.run_point(app, best_cfg, 0);
    auto ach = sweep.run_point(app, bench::base_config(), 1);
    t.add_row({app, harness::fmt(best.speedup()), harness::fmt(ach.speedup()),
               harness::fmt(ach.ideal_speedup())});
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  std::printf("== Table 4: best / achievable / ideal speedups ==\n");
  t.print();
  harness::maybe_write_csv(t, opt.csv_dir, "table4");
  return 0;
}
