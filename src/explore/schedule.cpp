#include "explore/schedule.hpp"

#include <cstdio>
#include <cstring>

namespace svmsim::explore {

namespace {

constexpr char kMagic[8] = {'S', 'V', 'M', 'S', 'C', 'H', 'E', 'D'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xffu);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xffu);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

std::string_view to_string(ChoiceKind k) noexcept {
  switch (k) {
    case ChoiceKind::kWire: return "wire";
    case ChoiceKind::kVictim: return "victim";
    case ChoiceKind::kPollSlip: return "poll-slip";
  }
  return "?";
}

std::string_view to_string(DecodeError e) noexcept {
  switch (e) {
    case DecodeError::kOk: return "ok";
    case DecodeError::kTruncated: return "truncated";
    case DecodeError::kBadMagic: return "bad magic";
    case DecodeError::kBadVersion: return "unsupported version";
    case DecodeError::kBadChecksum: return "checksum mismatch";
    case DecodeError::kBadFingerprint: return "config fingerprint mismatch";
  }
  return "?";
}

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::vector<std::uint8_t> encode(const Schedule& s, std::uint64_t fingerprint) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + 4 + 8 + 4 + s.size() * 9 + 8);
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  put_u32(out, kScheduleVersion);
  put_u64(out, fingerprint);
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  for (const Choice& c : s) {
    out.push_back(static_cast<std::uint8_t>(c.kind));
    put_u64(out, c.value);
  }
  const std::uint64_t sum =
      fnv1a({reinterpret_cast<const char*>(out.data()), out.size()});
  put_u64(out, sum);
  return out;
}

DecodeError decode(const std::uint8_t* data, std::size_t size,
                   std::uint64_t expect_fingerprint, Schedule& out) {
  // Header first: magic and version are judged before truncation of the
  // body so "this is not a schedule file at all" wins over "it is short".
  if (size < sizeof kMagic) return DecodeError::kTruncated;
  if (std::memcmp(data, kMagic, sizeof kMagic) != 0) {
    return DecodeError::kBadMagic;
  }
  constexpr std::size_t kHeader = 8 + 4 + 8 + 4;
  if (size < kHeader) return DecodeError::kTruncated;
  if (get_u32(data + 8) != kScheduleVersion) return DecodeError::kBadVersion;
  const std::uint64_t fingerprint = get_u64(data + 12);
  const std::uint32_t count = get_u32(data + 20);
  const std::size_t need = kHeader + std::size_t{count} * 9 + 8;
  if (size < need) return DecodeError::kTruncated;
  const std::uint64_t want =
      fnv1a({reinterpret_cast<const char*>(data), need - 8});
  if (get_u64(data + need - 8) != want) return DecodeError::kBadChecksum;
  if (fingerprint != expect_fingerprint) return DecodeError::kBadFingerprint;
  Schedule s;
  s.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t* rec = data + kHeader + std::size_t{i} * 9;
    const std::uint8_t kind = rec[0];
    if (kind < 1 || kind > 3) return DecodeError::kBadChecksum;
    s.push_back({static_cast<ChoiceKind>(kind), get_u64(rec + 1)});
  }
  out = std::move(s);
  return DecodeError::kOk;
}

bool save_file(const std::string& path, const Schedule& s,
               std::uint64_t fingerprint) {
  const std::vector<std::uint8_t> bytes = encode(s, fingerprint);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

DecodeError load_file(const std::string& path,
                      std::uint64_t expect_fingerprint, Schedule& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return DecodeError::kTruncated;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return decode(bytes.data(), bytes.size(), expect_fingerprint, out);
}

}  // namespace svmsim::explore
