# Empty dependencies file for svmsim.
# This may be replaced when dependencies are built.
