// Low-overhead per-simulation event recorder.
//
// Design (see docs/tracing.md):
//  - Fixed-size 32-byte records (sim time, proc/node, category, event id,
//    two u64 arguments) appended to pooled 4096-record chunks. Chunks
//    recycle through a thread-local freelist across runs (the frame_pool /
//    ObjectPool discipline), so steady-state tracing allocates O(chunks)
//    and tracing-off runs allocate nothing: a Machine only constructs a
//    Tracer when SimConfig::trace.enabled is set.
//  - Compile-time gate: configure with -DSVMSIM_TRACE=OFF to define
//    SVMSIM_TRACE_DISABLED, turning every SVMSIM_TRACE_EVENT into ((void)0).
//  - Runtime gate: the emission macro null-checks the Simulator's tracer
//    pointer and the per-category mask bit before evaluating arguments.
//  - Records never feed back into the simulation: a traced run is
//    byte-identical to an untraced one.
//
// A finished trace (TraceFile) embeds the run's core::Stats and a build
// provenance string, which makes any trace self-checkable: trace::check()
// recomputes per-category totals from the records and compares.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/stats.hpp"
#include "engine/types.hpp"
#include "trace/config.hpp"

namespace svmsim::trace {

/// Event ids. Each event belongs to exactly one Category (category_of);
/// the comment gives the meaning of the two record arguments.
enum class Event : std::uint8_t {
  // kPage
  kPageFault = 0,  ///< a0=page, a1=1 for a write fault, 0 for a read fault
  kPageFetch,      ///< a0=page, a1=home node
  kPageInstall,    ///< a0=page, a1=0 remote fetch / 1 local (guided) install
  kTwinCreate,     ///< a0=page
  kDiffCreate,     ///< a0=page, a1=diff wire bytes
  kDiffApply,      ///< a0=page, a1=modified bytes (at the home)
  kPageInval,      ///< a0=page
  kWriteNotices,   ///< a0=notice count processed at this acquire
  // kLock
  kLockLocal,      ///< a0=lock id (acquired on the cached free token)
  kLockRequest,    ///< a0=lock id, a1=home node (remote acquire issued)
  kLockGrant,      ///< a0=lock id, a1=requesting node (home grants)
  kLockRecall,     ///< a0=lock id (recall received at the token holder)
  kTokenReturn,    ///< a0=lock id (token returned toward the home)
  kBarrierEnter,   ///< a0=arrival index within the node
  kBarrierExit,    ///< a0=0 waiter / 1 node representative
  // kNet
  kMsgSend,        ///< a0=(type<<32)|dst node, a1=message wire bytes
  kMsgDeliver,     ///< a0=(type<<32)|src node, a1=message wire bytes
  kPacketTx,       ///< a0=dst node, a1=packet wire bytes
  kNiTx,           ///< a0=packet bytes, a1=NI occupancy cycles (send side)
  kNiRx,           ///< a0=packet bytes, a1=NI occupancy cycles (recv side)
  kIoBus,          ///< a0=packet bytes, a1=0 host->NI, 1 NI->host
  kUpdateSend,     ///< a0=page, a1=update payload bytes (AURC)
  kNiOverflow,     ///< a0=0 send queue / 1 receive queue
  // kIrq
  kIrqIssue,       ///< proc=victim processor interrupted for a request
  kPollDeliver,    ///< proc=processor whose poll tick picked up a request
  kHandlerSpan,    ///< a0=handler duration in cycles, a1=entry cost
  // kSched
  kTimeSpan,       ///< a0=cycles, a1=TimeCat (flushed Breakdown increment)
  // kNet (appended: earlier ids are stable in recorded traces)
  kLinkHop,        ///< a0=topology link id, a1=cycles queued for the link
  kCount,
};

[[nodiscard]] Category category_of(Event e) noexcept;
[[nodiscard]] std::string_view to_string(Event e) noexcept;

/// One trace record; the on-disk format is this struct verbatim
/// (native-endian, see docs/tracing.md).
struct Record {
  std::uint64_t time;  ///< global simulated time of emission
  std::uint64_t a0;
  std::uint64_t a1;
  std::int16_t proc;   ///< global processor id, -1 for node-level events
  std::int16_t node;
  std::uint8_t cat;    ///< Category
  std::uint8_t event;  ///< Event
  std::uint16_t pad;

  bool operator==(const Record&) const = default;
};
static_assert(sizeof(Record) == 32, "trace records are exactly 32 bytes");

/// Number of Counters fields serialized into a trace (format contract —
/// bump kFormatVersion when Counters grows).
inline constexpr int kCounterCount = 20;
inline constexpr std::uint32_t kFormatVersion = 1;

[[nodiscard]] std::array<std::uint64_t, kCounterCount> counters_to_array(
    const Counters& c) noexcept;
[[nodiscard]] Counters counters_from_array(
    const std::array<std::uint64_t, kCounterCount>& a) noexcept;
[[nodiscard]] std::string_view counter_name(int i) noexcept;
/// Which trace category must be enabled for counter `i` to be recomputable
/// from the records.
[[nodiscard]] Category counter_category(int i) noexcept;

/// A complete captured trace: header, provenance, the run's Stats, and the
/// time-ordered records.
struct TraceFile {
  std::uint32_t version = kFormatVersion;
  std::uint32_t mask = kAllCategories;
  int procs = 0;
  int nodes = 0;
  Cycles end_time = 0;
  std::string provenance;
  Stats stats{0};
  std::vector<Record> records;
};

/// Serialize to `path` (via a temp file + atomic rename). Throws
/// std::runtime_error on I/O failure.
void write_file(const TraceFile& f, const std::string& path);
/// Parse a trace written by write_file. Throws std::runtime_error on a
/// missing/corrupt file or a format-version mismatch.
[[nodiscard]] TraceFile read_file(const std::string& path);

/// One line describing this build: git revision (when configured in),
/// scheduler backend, sanitize/pool flags, trace compile gate.
[[nodiscard]] std::string build_provenance();

/// The per-run recorder. Constructed by Machine when the run's
/// SimConfig::trace.enabled is set (and tracing is compiled in); reached by
/// every layer through engine::Simulator::tracer().
class Tracer {
 public:
  Tracer(const Config& cfg, int procs, int nodes);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool wants(Category c) const noexcept {
    return (mask_ & category_bit(c)) != 0;
  }
  [[nodiscard]] std::uint32_t mask() const noexcept { return mask_; }
  [[nodiscard]] std::size_t record_count() const noexcept { return count_; }

  void emit(Cycles time, Category cat, Event ev, int proc, int node,
            std::uint64_t a0, std::uint64_t a1) {
    if (cur_ == nullptr || cur_->n == kChunkRecords) next_chunk();
    Record& r = cur_->recs[cur_->n++];
    ++count_;
    r.time = time;
    r.a0 = a0;
    r.a1 = a1;
    r.proc = static_cast<std::int16_t>(proc);
    r.node = static_cast<std::int16_t>(node);
    r.cat = static_cast<std::uint8_t>(cat);
    r.event = static_cast<std::uint8_t>(ev);
    r.pad = 0;
  }

  /// Materialize the trace with the run's final Stats embedded.
  [[nodiscard]] TraceFile capture(const Stats& stats, Cycles end_time) const;

  /// Runner hook: capture and write to the configured path (no-op when the
  /// path is empty, i.e. an in-memory-only tracer).
  void finish(const Stats& stats, Cycles end_time);

 private:
  static constexpr std::size_t kChunkRecords = 4096;  // 128 KiB per chunk
  struct Chunk {
    std::array<Record, kChunkRecords> recs;
    std::size_t n = 0;
  };

  void next_chunk();
  /// Thread-local recycled chunk storage (see trace.cpp).
  static std::vector<std::unique_ptr<Chunk>>& freelist();

  std::uint32_t mask_;
  std::string path_;
  int procs_;
  int nodes_;
  std::size_t count_ = 0;
  Chunk* cur_ = nullptr;
  std::vector<std::unique_ptr<Chunk>> chunks_;
};

}  // namespace svmsim::trace

// Emission macro: compiled out entirely under -DSVMSIM_TRACE=OFF; otherwise
// a null check + mask bit test before any argument is evaluated. `sim` is
// an engine::Simulator&; the record is stamped with sim.now().
#ifndef SVMSIM_TRACE_DISABLED
#define SVMSIM_TRACE_EVENT(sim, cat, ev, proc, node, a0, a1)                 \
  do {                                                                       \
    if (::svmsim::trace::Tracer* svmsim_tr_ = (sim).tracer();                \
        svmsim_tr_ != nullptr && svmsim_tr_->wants(cat)) {                   \
      svmsim_tr_->emit((sim).now(), (cat), (ev), (proc), (node),             \
                       static_cast<std::uint64_t>(a0),                       \
                       static_cast<std::uint64_t>(a1));                      \
    }                                                                        \
  } while (0)
#else
// Arguments vanish into an unevaluated operand: no code is generated, but
// the variables still count as used (no -Wunused warnings in OFF builds).
#define SVMSIM_TRACE_EVENT(sim, cat, ev, proc, node, a0, a1)                  \
  ((void)sizeof(((void)(sim), (void)(cat), (void)(ev), (void)(proc),          \
                 (void)(node), (void)(a0), (void)(a1), 0)))
#endif
