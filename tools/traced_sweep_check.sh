#!/usr/bin/env bash
# End-to-end tracing smoke, run by ctest as traced_sweep_check: record one
# trace per simulation point of a small sweep, require every trace to
# reproduce the run's core::Stats exactly (trace_analyze --check), and
# convert one of them to Chrome JSON.
#
#   tools/traced_sweep_check.sh <build_dir>
set -euo pipefail

build_dir="${1:?usage: traced_sweep_check.sh <build_dir>}"
out="$build_dir/traced_sweep"
rm -f "$out".bin.*

"$build_dir/bench/fig05_host_overhead" --scale=tiny --apps=fft,lu \
    --trace="$out.bin" > /dev/null
traces=("$out".bin.*)
if [ "${#traces[@]}" -lt 2 ]; then
  echo "traced_sweep_check: expected one trace per sweep point, got ${#traces[@]}" >&2
  exit 1
fi
"$build_dir/bench/trace_analyze" --check "${traces[@]}"
"$build_dir/tools/trace2chrome" "${traces[0]}" "$out.json" > /dev/null
echo "traced_sweep_check: ${#traces[@]} traces OK, chrome export at $out.json"
