// Tiny argument parser shared by bench/example binaries.
//
// Supported forms: --key=value, --key value, --flag.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace svmsim::harness {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& def) const;
  [[nodiscard]] long get_int(const std::string& key, long def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::unordered_map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace svmsim::harness
