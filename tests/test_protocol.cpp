// End-to-end SVM protocol tests: coherence through barriers and locks, for
// both HLRC and AURC, across node configurations. These run real data
// through the full machine (caches, NIC, protocol agents).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common.hpp"

namespace svmsim::test {
namespace {

using apps::Distribution;
using apps::SharedArray;
using apps::Shm;

struct ProtoParam {
  Protocol proto;
  int total;
  int ppn;
};

class ProtocolMatrix : public ::testing::TestWithParam<ProtoParam> {};

/// Every processor writes a slice, barrier, everyone verifies all slices.
TEST_P(ProtocolMatrix, BarrierPublishesWrites) {
  auto [proto, total, ppn] = GetParam();
  SimConfig cfg = config_with(total, ppn, proto);
  constexpr int kN = 512;
  SharedArray<double> arr;
  bool ok = true;

  LambdaWorkload w(
      "barrier-publish",
      [&](Machine& m) {
        arr = SharedArray<double>::alloc(m, kN, Distribution::block());
        for (int i = 0; i < kN; ++i) arr.debug_put(m, i, -1.0);
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        const int P = shm.nprocs();
        for (int it = 0; it < 3; ++it) {
          for (int i = pid * kN / P; i < (pid + 1) * kN / P; ++i) {
            co_await arr.put(shm, i, it * 1e4 + i);
          }
          co_await shm.barrier();
          for (int i = 0; i < kN; ++i) {
            const double v = co_await arr.get(shm, i);
            if (v != it * 1e4 + i) ok = false;
          }
          co_await shm.barrier();
        }
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(r.validated);
}

/// Lock-protected read-modify-write chains must never lose an update
/// (integer-exact; this was the reproducer for two protocol races).
TEST_P(ProtocolMatrix, LockedAccumulationIsExact) {
  auto [proto, total, ppn] = GetParam();
  SimConfig cfg = config_with(total, ppn, proto);
  constexpr int kSlots = 64;
  SharedArray<long long> acc;

  LambdaWorkload w(
      "locked-accumulate",
      [&](Machine& m) {
        acc = SharedArray<long long>::alloc(m, kSlots, Distribution::block());
        for (int i = 0; i < kSlots; ++i) acc.debug_put(m, i, 0LL);
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        const int P = shm.nprocs();
        for (int it = 0; it < 2; ++it) {
          for (int k = 0; k < P; ++k) {
            const int target = (pid + k) % P;
            co_await shm.lock(100 + target);
            for (int i = target * kSlots / P; i < (target + 1) * kSlots / P;
                 ++i) {
              const long long v = co_await acc.get(shm, i);
              co_await acc.put(shm, i, v + 1 + pid);
            }
            co_await shm.unlock(100 + target);
          }
          co_await shm.barrier();
        }
      },
      [&](Machine& m) {
        long long want = 0;
        for (int p = 0; p < total; ++p) want += 1 + p;
        want *= 2;
        for (int i = 0; i < kSlots; ++i) {
          if (acc.debug_get(m, i) != want) return false;
        }
        return true;
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(r.validated);
}

/// Producer/consumer through a lock: release-acquire must order the data.
TEST_P(ProtocolMatrix, LockReleaseOrdersData) {
  auto [proto, total, ppn] = GetParam();
  if (total < 2) GTEST_SKIP();
  SimConfig cfg = config_with(total, ppn, proto);
  SharedArray<int> data;
  SharedArray<int> flag;
  bool ok = true;

  LambdaWorkload w(
      "producer-consumer",
      [&](Machine& m) {
        data = SharedArray<int>::alloc(m, 256, Distribution::fixed(0));
        flag = SharedArray<int>::alloc(m, 1, Distribution::fixed(0));
        for (int i = 0; i < 256; ++i) data.debug_put(m, i, 0);
        flag.debug_put(m, 0, 0);
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        const int rounds = 6;
        if (pid == 0) {
          for (int r = 1; r <= rounds; ++r) {
            for (int i = 0; i < 256; ++i) co_await data.put(shm, i, r * 1000 + i);
            co_await shm.lock(5);
            co_await flag.put(shm, 0, r);
            co_await shm.unlock(5);
          }
        } else if (pid == shm.nprocs() - 1) {
          int seen = 0;
          while (seen < rounds) {
            co_await shm.lock(5);
            const int f = co_await flag.get(shm, 0);
            if (f > seen) {
              seen = f;
              // All of round f's data must be visible under the lock chain.
              for (int i = 0; i < 256; ++i) {
                const int v = co_await data.get(shm, i);
                if (v < seen * 1000 + i) ok = false;
              }
            }
            co_await shm.unlock(5);
            shm.compute(3000);
          }
        }
        co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(r.validated);
}

/// False sharing: concurrent writers to disjoint words of the same page.
TEST_P(ProtocolMatrix, FalseSharingMergesAtHome) {
  auto [proto, total, ppn] = GetParam();
  SimConfig cfg = config_with(total, ppn, proto);
  constexpr int kWords = 1000;  // ~one page of ints
  SharedArray<int> arr;

  LambdaWorkload w(
      "false-sharing",
      [&](Machine& m) {
        arr = SharedArray<int>::alloc(m, kWords, Distribution::fixed(0));
        for (int i = 0; i < kWords; ++i) arr.debug_put(m, i, -1);
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        const int P = shm.nprocs();
        // Interleaved ownership: adjacent words belong to different procs.
        for (int i = pid; i < kWords; i += P) {
          co_await arr.put(shm, i, pid * 100000 + i);
        }
        co_await shm.barrier();
      },
      [&](Machine& m) {
        for (int i = 0; i < kWords; ++i) {
          if (arr.debug_get(m, i) != (i % total) * 100000 + i) return false;
        }
        return true;
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(r.validated);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ProtocolMatrix,
    ::testing::Values(ProtoParam{Protocol::kHLRC, 2, 1},
                      ProtoParam{Protocol::kHLRC, 4, 2},
                      ProtoParam{Protocol::kHLRC, 8, 4},
                      ProtoParam{Protocol::kHLRC, 16, 4},
                      ProtoParam{Protocol::kHLRC, 16, 8},
                      ProtoParam{Protocol::kAURC, 2, 1},
                      ProtoParam{Protocol::kAURC, 4, 2},
                      ProtoParam{Protocol::kAURC, 16, 4}),
    [](const ::testing::TestParamInfo<ProtoParam>& info) {
      return to_string(info.param.proto) + "_" +
             std::to_string(info.param.total) + "p" +
             std::to_string(info.param.ppn);
    });

TEST(Protocol, SingleWriterPagesNeedNoDiffs) {
  // Block-distributed data written only by its owner: HLRC needs no twins
  // for home pages (the paper's "regular application" property).
  SimConfig cfg = config_with(4, 1);
  SharedArray<double> arr;
  LambdaWorkload w(
      "single-writer",
      [&](Machine& m) {
        arr = SharedArray<double>::alloc(m, 2048, Distribution::block());
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        const int P = shm.nprocs();
        for (int i = pid * 2048 / P; i < (pid + 1) * 2048 / P; ++i) {
          co_await arr.put(shm, i, i);
        }
        co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_EQ(r.stats.counters().twins_created, 0u);
  EXPECT_EQ(r.stats.counters().diffs_created, 0u);
}

TEST(Protocol, RemoteWriterCreatesTwinAndDiff) {
  SimConfig cfg = config_with(2, 1);
  SharedArray<double> arr;
  LambdaWorkload w(
      "remote-writer",
      [&](Machine& m) {
        arr = SharedArray<double>::alloc(m, 64, Distribution::fixed(0));
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        if (pid == 1) {
          for (int i = 0; i < 64; ++i) co_await arr.put(shm, i, i);
        }
        co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_EQ(r.stats.counters().twins_created, 1u);
  EXPECT_EQ(r.stats.counters().diffs_created, 1u);
  EXPECT_GT(r.stats.counters().diff_bytes, 64u * 8u);
}

TEST(Protocol, AurcSendsUpdatesInsteadOfDiffs) {
  SimConfig cfg = config_with(2, 1, Protocol::kAURC);
  SharedArray<double> arr;
  LambdaWorkload w(
      "aurc-updates",
      [&](Machine& m) {
        arr = SharedArray<double>::alloc(m, 64, Distribution::fixed(0));
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        if (pid == 1) {
          for (int i = 0; i < 64; ++i) co_await arr.put(shm, i, i);
        }
        co_await shm.barrier();
      },
      [&](Machine& m) {
        for (int i = 0; i < 64; ++i) {
          if (arr.debug_get(m, i) != i) return false;
        }
        return true;
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(r.validated);
  EXPECT_EQ(r.stats.counters().diffs_created, 0u);
  EXPECT_GT(r.stats.counters().updates_sent, 0u);
  EXPECT_GE(r.stats.counters().update_bytes, 64u * 8u);
}

TEST(Protocol, AurcCoalescesSequentialWrites) {
  // 64 sequential 8-byte writes coalesce into one update run.
  SimConfig cfg = config_with(2, 1, Protocol::kAURC);
  SharedArray<double> arr;
  LambdaWorkload w(
      "aurc-coalesce",
      [&](Machine& m) {
        arr = SharedArray<double>::alloc(m, 64, Distribution::fixed(0));
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        if (pid == 1) {
          std::vector<double> buf(64);
          for (int i = 0; i < 64; ++i) buf[static_cast<std::size_t>(i)] = i;
          co_await arr.put_block(shm, 0, buf.data(), 64);
        }
        co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_EQ(r.stats.counters().updates_sent, 1u);
}

TEST(Protocol, AurcScatteredWritesProduceManyUpdates) {
  SimConfig cfg = config_with(2, 1, Protocol::kAURC);
  SharedArray<double> arr;
  LambdaWorkload w(
      "aurc-scatter",
      [&](Machine& m) {
        arr = SharedArray<double>::alloc(m, 512, Distribution::fixed(0));
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        if (pid == 1) {
          for (int i = 0; i < 512; i += 16) {  // strided: no coalescing
            co_await arr.put(shm, i, i);
          }
        }
        co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_GE(r.stats.counters().updates_sent, 30u);
}

TEST(Protocol, DisableRemoteFetchesSkipsMessages) {
  SimConfig cfg = config_with(4, 2);
  cfg.disable_remote_fetches = true;
  SharedArray<double> arr;
  bool ok = true;
  LambdaWorkload w(
      "no-remote-fetch",
      [&](Machine& m) {
        arr = SharedArray<double>::alloc(m, 512, Distribution::fixed(0));
        for (int i = 0; i < 512; ++i) arr.debug_put(m, i, 3.5 * i);
      },
      [&](Machine& m, ProcId pid) -> engine::Task<void> {
        Shm shm(m, pid);
        for (int i = 0; i < 512; ++i) {
          if (co_await arr.get(shm, i) != 3.5 * i) ok = false;
        }
        co_await shm.barrier();
      });
  auto r = run(w, cfg);
  EXPECT_TRUE(ok);
  EXPECT_GT(r.stats.counters().page_fetches, 0u);
  // Fetches are satisfied locally: no page request/reply traffic beyond
  // barrier messages.
  EXPECT_LE(r.stats.counters().messages_sent, 16u);
}

}  // namespace
}  // namespace svmsim::test
