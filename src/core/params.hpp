// Simulation parameters.
//
// ArchParams are the fixed architectural constants of the paper's §2
// ("Simulation Environment"); CommParams are the communication-architecture
// parameters the paper sweeps (§3, Table 1) plus the two granularity
// parameters (page size, processors per node).
//
// Values marked [R] in DESIGN.md were lost to OCR in the source text and are
// reconstructed from surviving prose constraints and era hardware.
#pragma once

#include <cstdint>
#include <string>

#include "check/config.hpp"
#include "engine/types.hpp"
#include "topo/spec.hpp"
#include "trace/config.hpp"

namespace svmsim {

/// Which SVM protocol runs the cluster.
enum class Protocol {
  kHLRC,  ///< home-based lazy release consistency, software diffs
  kAURC,  ///< automatic-update release consistency, hardware write propagation
};

/// How incoming remote requests reach a processor of the node.
enum class InterruptScheme {
  kFixedProcessor,  ///< interrupt processor 0 of the node (paper's base)
  kRoundRobin,      ///< interrupt processors in rotation (paper §5)
  /// No interrupts at all: processors poll the incoming queue every
  /// `poll_interval` cycles (the paper's §10 proposal for avoiding
  /// asynchronous protocol processing). Requests pay the average poll
  /// latency instead of the interrupt cost.
  kPolling,
};

[[nodiscard]] std::string to_string(Protocol p);
[[nodiscard]] std::string to_string(InterruptScheme s);

struct CacheParams {
  std::uint32_t size_bytes;
  std::uint32_t associativity;
  std::uint32_t line_bytes;
  Cycles hit_cycles;
};

/// Fixed node/network architecture (paper §2). The simulated processor is a
/// single-issue 1-IPC core; one cycle of "compute" is one instruction.
struct ArchParams {
  CacheParams l1{16 * 1024, 1, 64, 1};   // direct-mapped, write-through
  CacheParams l2{512 * 1024, 2, 64, 8};  // 2-way, write-back

  std::uint32_t wb_entries = 8;    // write buffer, line-wide entries
  std::uint32_t wb_retire_at = 4;  // start retiring when this full
  Cycles wb_hit_cycles = 1;        // read satisfied in the write buffer

  // Split-transaction memory bus: 64-bit wide, bus clock = CPU clock / 4,
  // arbitration one bus cycle. 2 bytes/CPU-cycle peak = 400 MB/s @ 200 MHz.
  std::uint32_t membus_bytes_per_bus_cycle = 8;
  std::uint32_t membus_cpu_per_bus_cycle = 4;
  Cycles membus_arbitration_cycles = 4;  // one bus cycle
  Cycles dram_latency_cycles = 28;       // pipelined DRAM access

  // Network: links run at processor speed, 16 bits wide => 2 bytes/cycle.
  // Link latency is small and constant in a SAN; it is not swept (paper §3).
  double link_bytes_per_cycle = 2.0;
  Cycles wire_latency_cycles = 100;

  // Contended topologies (src/topo/) split per-hop costs into two link
  // classes: intra-node (host <-> first switch/router, the injection and
  // ejection stage) and inter-node (switch <-> switch). The legacy
  // crossbar path keeps using wire_latency_cycles / link_bytes_per_cycle
  // end to end; these defaults make a minimum fat-tree route (6 hops) land
  // in the same order of magnitude as the crossbar's 100-cycle wire.
  Cycles intra_hop_latency_cycles = 20;
  Cycles inter_hop_latency_cycles = 40;
  double intra_link_bytes_per_cycle = 2.0;
  double inter_link_bytes_per_cycle = 2.0;

  // Network interface: two 1 MB queues; a full queue interrupts the host.
  std::uint32_t ni_queue_bytes = 1u << 20;
  std::uint32_t mtu_payload_bytes = 4096;
  std::uint32_t packet_header_bytes = 32;
  std::uint32_t message_header_bytes = 32;

  // Protocol-handler software costs (paper §2).
  Cycles tlb_access_cycles = 50;          // TLB access from a kernel handler
  Cycles fault_trap_cycles = 350;         // page-fault trap entry/exit [R]
  Cycles handler_dispatch_cycles = 200;   // request-handler dispatch [R]
  Cycles diff_compare_cycles_per_word = 4;   // per word compared
  Cycles diff_include_cycles_per_word = 8;   // extra per word in the diff
  Cycles write_notice_cycles = 8;            // per notice processed [R]
  Cycles page_install_cycles_per_kb = 32;    // copy/install fetched page [R]

  // Intra-node (hardware-coherent SMP) synchronization costs [R].
  Cycles smp_lock_cycles = 60;      // uncontended in-node lock acquire
  Cycles smp_barrier_cycles = 200;  // in-node hierarchical barrier stage

  /// Sanity-check the divisors and latency floors the network layer relies
  /// on: every link bandwidth must be > 0 (min_serialization and
  /// transmit() divide by it) and every wire/hop latency nonzero (delivery
  /// events must land strictly in the future — the wire band and the PDES
  /// lookahead both require it). Returns an empty string when valid, a
  /// diagnostic naming the offending field otherwise. The Machine
  /// constructor enforces this; benches map it to bench::kExitBadArch.
  [[nodiscard]] std::string validate() const;
};

/// The communication parameters of Table 1 plus granularity parameters.
struct CommParams {
  /// Host processor busy time to post one (asynchronous) message send.
  Cycles host_overhead = 500;

  /// Node-to-network bandwidth, limited by the I/O bus, expressed as in the
  /// paper: MB/s per MHz of processor clock == bytes per processor cycle.
  double io_bus_mb_per_mhz = 0.5;

  /// NI firmware time to prepare one packet (each direction).
  Cycles ni_occupancy = 1000;

  /// Cost of each of *issuing* and *delivering* an interrupt; a null
  /// interrupt costs 2x this value end to end (paper §3).
  Cycles interrupt_cost = 500;

  /// Polling period when `interrupt_scheme == kPolling`: an incoming
  /// request waits until the next poll tick instead of interrupting.
  Cycles poll_interval = 1000;
  /// Instrumentation cost charged to the polling processor per serviced
  /// request (the poll-loop check that found work).
  Cycles poll_check_cost = 20;

  std::uint32_t page_bytes = 4096;
  int procs_per_node = 4;
  int total_procs = 16;

  /// Network interfaces per node (paper §10 future work: "multiple network
  /// interfaces per node is another approach that can increase the
  /// available bandwidth ... protocol changes may be necessary to ensure
  /// proper event ordering"). Traffic between a node pair always uses the
  /// same NI index on both sides, preserving the pairwise FIFO ordering the
  /// protocol relies on.
  int nics_per_node = 1;

  Protocol protocol = Protocol::kHLRC;
  InterruptScheme interrupt_scheme = InterruptScheme::kFixedProcessor;

  [[nodiscard]] int node_count() const { return total_procs / procs_per_node; }

  /// I/O bus cycles to move `bytes` between host memory and the NI.
  [[nodiscard]] Cycles io_bus_cycles(std::uint64_t bytes) const {
    return static_cast<Cycles>(
        static_cast<double>(bytes) / io_bus_mb_per_mhz + 0.5);
  }

  /// The "achievable" point: aggressive but implementable today (paper §3).
  [[nodiscard]] static CommParams achievable();
  /// The "best" point: every swept parameter at its best value; contention
  /// is still modeled (paper §3).
  [[nodiscard]] static CommParams best();

  [[nodiscard]] std::string describe() const;
};

/// Everything a run needs.
struct SimConfig {
  ArchParams arch;
  CommParams comm;

  /// Interconnect topology (src/topo/, --topology). The default kLegacy is
  /// the paper's contention-free crossbar on the original code path;
  /// kCrossbar simulates the identical machine through the topology
  /// backend (byte-identical results — tools/topology_equivalence.sh);
  /// fat tree and torus change *what* is simulated: routes are multi-hop
  /// and links contend, so times and Stats legitimately differ.
  topo::Spec topology;

  /// Diagnostics/ablation switches used by the paper's guided simulations
  /// (§6): pretend every page fetch is local, i.e. remote fetches are free.
  bool disable_remote_fetches = false;

  /// Worker threads for the conservative node-partitioned PDES mode
  /// (docs/engine.md): 1 = the serial engine (default); N > 1 splits the
  /// simulated nodes into up to N contiguous groups, each driven by its own
  /// scheduler, synchronized in windows of the crossbar wire latency.
  /// Results are byte-identical to the serial engine for every value.
  /// Deliberately not part of CommParams: it changes how the simulation is
  /// executed, never what is simulated, so describe()/sweep keys ignore it.
  int par_cores = 1;

  /// Window-end policy for the PDES mode: adaptive (the default) stretches
  /// each window to the earliest possible cross-partition send plus the
  /// lookahead; fixed reproduces the original one-lookahead windows. Like
  /// par_cores this changes how the simulation is executed, never what is
  /// simulated — results are byte-identical under either policy — so
  /// describe()/sweep keys ignore it. Building with
  /// -DSVMSIM_PDES_WINDOW=fixed flips the compiled-in default.
  WindowPolicy pdes_window =
#ifdef SVMSIM_PDES_WINDOW_FIXED
      WindowPolicy::kFixed;
#else
      WindowPolicy::kAdaptive;
#endif

  /// Event-recorder settings (src/trace/). Never affects simulated time:
  /// results are byte-identical with tracing on or off.
  trace::Config trace;

  /// Consistency-checker settings (src/check/). Like tracing, the checker is
  /// passive: results are byte-identical with checking on or off.
  check::Config check;
};

}  // namespace svmsim
