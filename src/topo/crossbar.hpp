// Crossbar backend: the paper's contention-free network as a Topology.
//
// Exists to prove the topology plumbing is observationally inert: with
// contended() == false, Network::transmit() takes the very same legacy code
// path (same latency formula, same wire key, same delivery closure), so a
// --topology=crossbar run is byte-identical to a run with no topology at
// all — tools/topology_equivalence.sh diffs the two. No links are
// allocated: an n-port crossbar has no shared wires to contend on, and the
// n^2 virtual circuits would only burn memory at 256+ nodes.
#pragma once

#include "topo/topology.hpp"

namespace svmsim::topo {

class Crossbar final : public Topology {
 public:
  explicit Crossbar(const ArchParams& arch) noexcept : Topology(arch) {
    // The legacy lookahead floor, verbatim (net::Network::min_latency):
    // wire latency plus the packet header's serialization at link bandwidth.
    const auto min_serialization =
        static_cast<Cycles>(static_cast<double>(arch.packet_header_bytes) /
                            arch.link_bytes_per_cycle);
    const Cycles floor = arch.wire_latency_cycles + min_serialization;
    min_latency_ = floor > 0 ? floor : 1;
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "crossbar";
  }
  [[nodiscard]] bool contended() const noexcept override { return false; }
  void route(NodeId, NodeId, RouteBuf& out) const noexcept override {
    out.hops = 0;
  }
};

}  // namespace svmsim::topo
