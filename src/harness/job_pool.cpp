#include "harness/job_pool.hpp"

#include <algorithm>
#include <utility>

namespace svmsim::harness {

unsigned JobPool::hardware_default() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

JobPool::JobPool(unsigned threads) {
  if (threads == 0) threads = hardware_default();
  threads_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

JobPool::~JobPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void JobPool::run(std::vector<Job> jobs) {
  if (jobs.empty()) return;
  std::unique_lock<std::mutex> lk(mu_);
  batch_ = &jobs;
  next_ = 0;
  remaining_ = jobs.size();
  first_error_ = nullptr;
  work_cv_.notify_all();
  done_cv_.wait(lk, [this] { return remaining_ == 0; });
  batch_ = nullptr;
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void JobPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] {
      return stop_ || (batch_ != nullptr && next_ < batch_->size());
    });
    if (stop_) return;
    const std::size_t i = next_++;
    Job& job = (*batch_)[i];
    lk.unlock();
    try {
      job();
    } catch (...) {
      lk.lock();
      if (!first_error_) first_error_ = std::current_exception();
      lk.unlock();
    }
    lk.lock();
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

}  // namespace svmsim::harness
