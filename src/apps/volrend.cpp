// Volrend: volume rendering by ray casting (SPLASH-2 Volrend structure):
// a large read-only volume shared by all processors, an image partitioned
// into fine-grained tiles, and per-processor task queues with stealing.
// The paper's version improves the initial assignment of tasks before
// stealing; we assign contiguous tile ranges and steal from the back.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/factories.hpp"

namespace svmsim::apps {

namespace {

/// Trilinear sample of the byte volume at (x, y, z) in voxel coordinates.
double sample(const std::vector<std::uint8_t>& vol, int dim, double x,
              double y, double z) {
  const int x0 = std::clamp(static_cast<int>(x), 0, dim - 2);
  const int y0 = std::clamp(static_cast<int>(y), 0, dim - 2);
  const int z0 = std::clamp(static_cast<int>(z), 0, dim - 2);
  const double fx = std::clamp(x - x0, 0.0, 1.0);
  const double fy = std::clamp(y - y0, 0.0, 1.0);
  const double fz = std::clamp(z - z0, 0.0, 1.0);
  auto at = [&](int xi, int yi, int zi) {
    return static_cast<double>(
        vol[(static_cast<std::size_t>(zi) * dim + yi) * dim + xi]);
  };
  const double c00 = at(x0, y0, z0) * (1 - fx) + at(x0 + 1, y0, z0) * fx;
  const double c10 = at(x0, y0 + 1, z0) * (1 - fx) + at(x0 + 1, y0 + 1, z0) * fx;
  const double c01 = at(x0, y0, z0 + 1) * (1 - fx) + at(x0 + 1, y0, z0 + 1) * fx;
  const double c11 =
      at(x0, y0 + 1, z0 + 1) * (1 - fx) + at(x0 + 1, y0 + 1, z0 + 1) * fx;
  const double c0 = c00 * (1 - fy) + c10 * fy;
  const double c1 = c01 * (1 - fy) + c11 * fy;
  return c0 * (1 - fz) + c1 * fz;
}

/// Cast one ray through the volume (orthographic along +z), compositing
/// front to back. Returns the packed pixel and accumulates op counts.
std::uint32_t cast_ray(const std::vector<std::uint8_t>& vol, int dim,
                       double px, double py, std::uint64_t& ops) {
  double r = 0, g = 0, b = 0, alpha = 0;
  for (double z = 0.5; z < dim - 1 && alpha < 0.98; z += 0.75) {
    const double d = sample(vol, dim, px, py, z) / 255.0;
    ops += 40;
    if (d < 0.05) continue;
    // Transfer function: low densities cool blue, high densities warm.
    const double a = std::min(0.35, d * 0.5);
    const double cr = d;
    const double cg = 0.4 + 0.3 * d;
    const double cb = 1.0 - d;
    const double w = a * (1.0 - alpha);
    r += w * cr;
    g += w * cg;
    b += w * cb;
    alpha += w;
    ops += 16;
  }
  auto q = [](double v) {
    return static_cast<std::uint32_t>(std::clamp(v, 0.0, 1.0) * 255.0 + 0.5);
  };
  return q(r) | (q(g) << 8) | (q(b) << 16) | (q(alpha) << 24);
}

std::uint64_t render_tile(const std::vector<std::uint8_t>& vol, int dim,
                          int width, int tile, int tile_size,
                          std::uint32_t* out) {
  const int tiles_x = width / tile_size;
  const int tx = (tile % tiles_x) * tile_size;
  const int ty = (tile / tiles_x) * tile_size;
  std::uint64_t ops = 0;
  for (int y = 0; y < tile_size; ++y) {
    for (int x = 0; x < tile_size; ++x) {
      const double px = (tx + x + 0.5) / width * (dim - 1);
      const double py = (ty + y + 0.5) / width * (dim - 1);
      out[y * tile_size + x] = cast_ray(vol, dim, px, py, ops);
      ops += 8;
    }
  }
  return ops;
}

class VolrendApp final : public Application {
 public:
  explicit VolrendApp(Scale scale) : Application(scale) {
    switch (scale) {
      case Scale::kTiny:
        dim_ = 16;
        width_ = 32;
        break;
      case Scale::kSmall:
        dim_ = 32;
        width_ = 64;
        break;
      case Scale::kLarge:
        dim_ = 64;
        width_ = 128;
        break;
    }
    tiles_ = (width_ / kTile) * (width_ / kTile);
  }

  [[nodiscard]] std::string name() const override { return "volrend"; }

  void setup(Machine& mach) override {
    P_ = mach.total_procs();
    // Procedural volume: two gaussian blobs plus a shell.
    vol_.assign(static_cast<std::size_t>(dim_) * dim_ * dim_, 0);
    const double c = (dim_ - 1) / 2.0;
    for (int z = 0; z < dim_; ++z) {
      for (int y = 0; y < dim_; ++y) {
        for (int x = 0; x < dim_; ++x) {
          auto blob = [&](double bx, double by, double bz, double s) {
            const double dx = x - bx, dy = y - by, dz = z - bz;
            return std::exp(-(dx * dx + dy * dy + dz * dz) / (2 * s * s));
          };
          double v = blob(c * 0.7, c, c, dim_ / 7.0) +
                     blob(c * 1.4, c * 1.2, c * 0.8, dim_ / 9.0);
          const double rr = std::sqrt((x - c) * (x - c) + (y - c) * (y - c) +
                                      (z - c) * (z - c));
          v += 0.4 * std::exp(-std::abs(rr - c * 0.85));
          vol_[(static_cast<std::size_t>(z) * dim_ + y) * dim_ + x] =
              static_cast<std::uint8_t>(std::clamp(v, 0.0, 1.0) * 255.0);
        }
      }
    }
    shm_vol_ = SharedArray<std::uint8_t>::alloc(mach, vol_.size(),
                                                Distribution::cyclic());
    for (std::size_t i = 0; i < vol_.size(); i += 4096) {
      const std::size_t chunk = std::min<std::size_t>(4096, vol_.size() - i);
      mach.debug_write(shm_vol_.addr(i), vol_.data() + i, chunk);
    }

    image_ = SharedArray<std::uint32_t>::alloc(
        mach, static_cast<std::size_t>(width_) * width_,
        Distribution::block());
    items_ = SharedArray<std::int32_t>::alloc(
        mach, static_cast<std::size_t>(tiles_), Distribution::block());
    const std::size_t stride =
        mach.config().comm.page_bytes / sizeof(std::int32_t);
    ht_stride_ = stride;
    heads_ = SharedArray<std::int32_t>::alloc(
        mach, stride * static_cast<std::size_t>(P_), Distribution::fixed(0));
    const int ppn = mach.config().comm.procs_per_node;
    for (int p = 0; p < P_; ++p) {
      mach.space().set_home_range(
          heads_.addr(stride * static_cast<std::size_t>(p)),
          stride * sizeof(std::int32_t), p / ppn);
    }
    for (int t = 0; t < tiles_; ++t) {
      items_.debug_put(mach, static_cast<std::size_t>(t), t);
    }
    for (int p = 0; p < P_; ++p) {
      heads_.debug_put(mach, stride * static_cast<std::size_t>(p),
                       tiles_ * p / P_);
      heads_.debug_put(mach, stride * static_cast<std::size_t>(p) + 1,
                       tiles_ * (p + 1) / P_);
    }

    expected_.assign(static_cast<std::size_t>(width_) * width_, 0);
    std::vector<std::uint32_t> tilebuf(kTile * kTile);
    for (int t = 0; t < tiles_; ++t) {
      render_tile(vol_, dim_, width_, t, kTile, tilebuf.data());
      const int tiles_x = width_ / kTile;
      const int tx = (t % tiles_x) * kTile;
      const int ty = (t / tiles_x) * kTile;
      for (int y = 0; y < kTile; ++y) {
        std::copy_n(tilebuf.data() + y * kTile, kTile,
                    expected_.data() +
                        static_cast<std::size_t>(ty + y) * width_ + tx);
      }
    }
  }

  engine::Task<void> body(Machine& mach, ProcId pid) override {
    Shm shm(mach, pid);
    // Read the whole volume through SVM: a large read-only footprint that
    // replicates across nodes (Volrend's characteristic sharing).
    std::vector<std::uint8_t> vol(vol_.size());
    co_await shm_vol_.get_block(shm, 0, vol.data(), vol.size());

    std::vector<std::uint32_t> tilebuf(kTile * kTile);
    std::vector<std::uint32_t> rowbuf(kTile);
    for (;;) {
      const int tile = co_await take_task(shm, pid);
      if (tile < 0) break;
      const std::uint64_t ops =
          render_tile(vol, dim_, width_, tile, kTile, tilebuf.data());
      shm.compute(kWorkScale * ops);
      const int tiles_x = width_ / kTile;
      const int tx = (tile % tiles_x) * kTile;
      const int ty = (tile / tiles_x) * kTile;
      for (int y = 0; y < kTile; ++y) {
        std::copy_n(tilebuf.data() + y * kTile, kTile, rowbuf.data());
        co_await image_.put_block(
            shm, static_cast<std::size_t>(ty + y) * width_ + tx, rowbuf.data(),
            kTile);
      }
    }
  }

  bool validate(Machine& mach) override {
    for (std::size_t i = 0; i < expected_.size(); ++i) {
      if (image_.debug_get(mach, i) != expected_[i]) return false;
    }
    return true;
  }

 private:
  /// Per-element work multiplier: our kernels charge only marker costs for
  /// the arithmetic they model; this constant folds in the private-memory
  /// instruction stream of the real SPLASH-2 code so the compute-to-
  /// communication ratio lands in the paper's regime (see DESIGN.md).
  static constexpr Cycles kWorkScale = 4;
  static constexpr int kTile = 4;  // finer tasks than raytrace
  static constexpr int kQueueLockBase = 5120;

  engine::Task<int> take_task(Shm& shm, ProcId pid) {
    for (int attempt = 0; attempt < P_; ++attempt) {
      const int victim = (pid + attempt) % P_;
      const std::size_t slot = ht_stride_ * static_cast<std::size_t>(victim);
      co_await shm.lock(kQueueLockBase + victim);
      const std::int32_t head = co_await heads_.get(shm, slot);
      const std::int32_t tail = co_await heads_.get(shm, slot + 1);
      if (head < tail) {
        std::int32_t idx;
        if (attempt == 0) {
          idx = head;
          co_await heads_.put(shm, slot, head + 1);
        } else {
          idx = tail - 1;
          co_await heads_.put(shm, slot + 1, tail - 1);
        }
        const std::int32_t tile =
            co_await items_.get(shm, static_cast<std::size_t>(idx));
        co_await shm.unlock(kQueueLockBase + victim);
        shm.compute(kWorkScale * 20);
        co_return tile;
      }
      co_await shm.unlock(kQueueLockBase + victim);
      shm.compute(kWorkScale * 10);
    }
    co_return -1;
  }

  int dim_ = 16;
  int width_ = 32;
  int tiles_ = 64;
  int P_ = 1;
  std::size_t ht_stride_ = 1024;
  std::vector<std::uint8_t> vol_;
  SharedArray<std::uint8_t> shm_vol_;
  SharedArray<std::uint32_t> image_;
  SharedArray<std::int32_t> items_;
  SharedArray<std::int32_t> heads_;
  std::vector<std::uint32_t> expected_;
};

}  // namespace

std::unique_ptr<Application> make_volrend(Scale scale) {
  return std::make_unique<VolrendApp>(scale);
}

}  // namespace svmsim::apps
