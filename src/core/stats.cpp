#include "core/stats.hpp"

#include <algorithm>

namespace svmsim {

std::string_view to_string(TimeCat c) {
  switch (c) {
    case TimeCat::kCompute:
      return "compute";
    case TimeCat::kMemStall:
      return "mem-stall";
    case TimeCat::kWriteBufStall:
      return "wb-stall";
    case TimeCat::kDataWait:
      return "data-wait";
    case TimeCat::kLockWait:
      return "lock-wait";
    case TimeCat::kBarrierWait:
      return "barrier-wait";
    case TimeCat::kHandler:
      return "handler";
    case TimeCat::kProtocol:
      return "protocol";
    case TimeCat::kCount:
      break;
  }
  return "?";
}

Counters& Counters::operator+=(const Counters& o) noexcept {
  page_faults += o.page_faults;
  read_faults += o.read_faults;
  write_faults += o.write_faults;
  page_fetches += o.page_fetches;
  local_lock_acquires += o.local_lock_acquires;
  remote_lock_acquires += o.remote_lock_acquires;
  barriers += o.barriers;
  messages_sent += o.messages_sent;
  packets_sent += o.packets_sent;
  bytes_sent += o.bytes_sent;
  interrupts += o.interrupts;
  polled_requests += o.polled_requests;
  twins_created += o.twins_created;
  diffs_created += o.diffs_created;
  diff_bytes += o.diff_bytes;
  write_notices += o.write_notices;
  invalidations += o.invalidations;
  updates_sent += o.updates_sent;
  update_bytes += o.update_bytes;
  ni_queue_overflows += o.ni_queue_overflows;
  return *this;
}

Breakdown Stats::aggregate() const {
  Breakdown sum;
  for (const auto& b : per_proc_) sum += b;
  return sum;
}

Cycles Stats::max_local_only() const {
  Cycles m = 0;
  for (const auto& b : per_proc_) m = std::max(m, b.local_only());
  return m;
}

Cycles Stats::total_compute() const {
  Cycles s = 0;
  for (const auto& b : per_proc_) s += b.get(TimeCat::kCompute);
  return s;
}

}  // namespace svmsim
