// Figure 14 (paper's clustering figure): effects of the degree of
// clustering — processors per node, 16 processors total — on performance,
// keeping the memory subsystem fixed (the paper's stated assumption).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);
  bench::run_figure(
      "fig14", "procs/node", {1, 2, 4, 8},
      [](SimConfig& c, double v) {
        c.comm.procs_per_node = static_cast<int>(v);
      },
      opt, sweep);
  return 0;
}
