// A deterministic discrete-event queue.
//
// Events are (time, sequence) ordered; the sequence number makes simultaneous
// events fire in insertion order, which keeps every simulation run
// bit-reproducible regardless of heap internals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "engine/types.hpp"

namespace svmsim::engine {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time. Advances only inside run()/step().
  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `when` (must be >= now()).
  void schedule_at(Cycles when, Action action);

  /// Schedule `action` to run `delay` cycles from now.
  void schedule_in(Cycles delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

  /// Run a single event; returns false if none pending.
  bool step();

  /// Run until no events remain.
  void run_until_idle();

  /// Run until no events remain or simulated time would exceed `deadline`.
  /// Returns true if the queue drained, false if the deadline stopped it.
  bool run_until(Cycles deadline);

 private:
  struct Event {
    Cycles when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Cycles now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace svmsim::engine
