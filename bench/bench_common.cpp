#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace svmsim::bench {

Options Options::parse(int argc, char** argv) {
  harness::Cli cli(argc, argv);
  Options opt;
  opt.prog = argc > 0 ? argv[0] : "bench";
  const std::string scale = cli.get_or("scale", "small");
  if (scale == "tiny") {
    opt.scale = apps::Scale::kTiny;
  } else if (scale == "large") {
    opt.scale = apps::Scale::kLarge;
  } else {
    opt.scale = apps::Scale::kSmall;
  }
  opt.csv_dir = cli.get_or("csv", "");
  if (auto apps_arg = cli.get("apps")) {
    std::stringstream ss(*apps_arg);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) opt.app_names.push_back(item);
    }
  } else {
    opt.app_names = apps::suite();
  }
  opt.trace.path = cli.get_or("trace", "");
  opt.trace.enabled = !opt.trace.path.empty();
  if (auto cats = cli.get("trace-categories")) {
    if (auto mask = trace::parse_mask(*cats)) {
      opt.trace.mask = *mask;
    } else {
      std::fprintf(stderr,
                   "unknown --trace-categories value '%s' "
                   "(expected a comma list of page,lock,net,irq,sched)\n",
                   cats->c_str());
      std::exit(2);
    }
  }
  opt.check.enabled = cli.has("check-consistency");
  opt.par_cores = std::max(1, static_cast<int>(cli.get_int("par-cores", 1)));
  if (opt.trace.enabled && opt.par_cores > 1) {
    // Catch the conflict at the CLI instead of the Machine constructor's
    // throw, with a distinct exit code scripts can branch on.
    std::fprintf(stderr,
                 "%s: --trace cannot be combined with --par-cores=%d: a "
                 "trace is one global event stream in emission order, and "
                 "partition workers emitting concurrently would interleave "
                 "nondeterministically (see docs/tracing.md). Drop --trace "
                 "or run with --par-cores=1.\n",
                 argc > 0 ? argv[0] : "bench", opt.par_cores);
    std::exit(kExitTracedParallel);
  }
  if (auto t = cli.get("topology")) {
    if (auto spec = topo::Spec::parse(*t)) {
      opt.topology = *spec;
    } else {
      std::fprintf(stderr,
                   "%s: unknown --topology value '%s' (expected legacy, "
                   "crossbar, fattree:<even k in [2,64]>, or "
                   "torus:<X>x<Y>[x<Z>] with positive dimensions)\n",
                   opt.prog.c_str(), t->c_str());
      std::exit(kExitBadTopology);
    }
  }
  // Architecture overrides are validated here, at parse time, with the same
  // check the Machine constructor applies — the bench exits kExitBadArch
  // instead of dying on the constructor's throw mid-sweep.
  opt.arch = SimConfig{}.arch;
  opt.arch.link_bytes_per_cycle =
      cli.get_double("link-bytes-per-cycle", opt.arch.link_bytes_per_cycle);
  opt.arch.wire_latency_cycles = static_cast<Cycles>(cli.get_int(
      "wire-latency", static_cast<long>(opt.arch.wire_latency_cycles)));
  if (const std::string err = opt.arch.validate(); !err.empty()) {
    std::fprintf(stderr, "%s: bad architecture parameter: %s\n",
                 opt.prog.c_str(), err.c_str());
    std::exit(kExitBadArch);
  }
  const std::string window = cli.get_or("pdes-window", "");
  if (window == "fixed") {
    opt.pdes_window = WindowPolicy::kFixed;
  } else if (window == "adaptive") {
    opt.pdes_window = WindowPolicy::kAdaptive;
  } else if (!window.empty()) {
    std::fprintf(stderr,
                 "unknown --pdes-window value '%s' "
                 "(expected adaptive or fixed)\n",
                 window.c_str());
    std::exit(2);
  }
  // Jobs x par_cores threads run at once: when PDES mode is on, shrink the
  // default job count so the machine is not oversubscribed. An explicit
  // --jobs always wins.
  long default_jobs = static_cast<long>(harness::JobPool::hardware_default());
  if (opt.par_cores > 1) {
    default_jobs = std::max(1L, default_jobs / opt.par_cores);
  }
  opt.jobs = static_cast<int>(cli.get_int("jobs", default_jobs));
  opt.jobs = std::max(1, opt.jobs);
  if (opt.jobs > 1) {
    opt.pool_ = std::make_shared<harness::JobPool>(
        static_cast<unsigned>(opt.jobs));
  }
  return opt;
}

int checked_total_procs(const char* argv0, const char* flag, long total,
                        int procs_per_node) {
  const char* prog = argv0 != nullptr ? argv0 : "bench";
  if (total <= 0 || total > kMaxTotalProcs) {
    std::fprintf(stderr,
                 "%s: %s=%ld is out of range: the simulated cluster must "
                 "have between 1 and %ld processors\n",
                 prog, flag, total, kMaxTotalProcs);
    std::exit(kExitBadProcs);
  }
  if (procs_per_node <= 0 || total % procs_per_node != 0) {
    std::fprintf(stderr,
                 "%s: %s=%ld is not a multiple of procs_per_node=%d: nodes "
                 "are whole, so the cluster size must be a positive multiple "
                 "of the processors per node\n",
                 prog, flag, total, procs_per_node);
    std::exit(kExitBadProcs);
  }
  return static_cast<int>(total);
}

void checked_topology(const char* argv0, const topo::Spec& spec, int nodes) {
  if (topo::fits(spec, nodes)) return;
  std::fprintf(stderr,
               "%s: --topology=%s does not fit a %d-node cluster: a fat "
               "tree of arity k hosts up to k^3/4 nodes and a torus needs "
               "its dimension product to equal the node count exactly\n",
               argv0 != nullptr ? argv0 : "bench", spec.to_string().c_str(),
               nodes);
  std::exit(kExitBadTopology);
}

SimConfig base_config() {
  SimConfig cfg;
  cfg.comm = CommParams::achievable();
  return cfg;
}

std::vector<harness::SweepPoint> suite_points(
    const std::vector<double>& values,
    const std::function<void(SimConfig&, double)>& apply, const Options& opt) {
  std::vector<harness::SweepPoint> points;
  points.reserve(opt.app_names.size() * values.size());
  for (const auto& app : opt.app_names) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      harness::SweepPoint p{app, base_config(), values[i]};
      apply(p.cfg, values[i]);
      p.cfg.arch = opt.arch;
      p.cfg.topology = opt.topology;
      // apply() may resize the cluster, so fit is checked per point.
      checked_topology(opt.prog.c_str(), p.cfg.topology,
                       p.cfg.comm.node_count());
      p.cfg.par_cores = opt.par_cores;
      p.cfg.pdes_window = opt.pdes_window;
      p.cfg.trace = opt.trace;
      if (opt.trace.enabled) {
        // Each point is its own Machine/run: give each its own trace file.
        p.cfg.trace.path =
            opt.trace.path + "." + app + "-" + std::to_string(i);
      }
      p.cfg.check = opt.check;
      if (opt.check.enabled && opt.trace.enabled) {
        // A violating point dumps its trace for trace2chrome replay.
        p.cfg.check.trace_path = p.cfg.trace.path + ".violation";
      }
      points.push_back(std::move(p));
    }
  }
  return points;
}

std::vector<std::vector<harness::AppRun>> run_figure(
    const std::string& figure, const std::string& param_name,
    const std::vector<double>& values,
    const std::function<void(SimConfig&, double)>& apply, const Options& opt,
    harness::Sweep& sweep,
    const std::function<std::string(double)>& value_label) {
  auto label = [&](double v) {
    return value_label ? value_label(v) : harness::fmt(v, 0);
  };

  std::vector<std::string> header{"application"};
  for (double v : values) header.push_back(param_name + "=" + label(v));
  harness::Table table(header);

  // One flat batch across the whole suite: with --jobs > 1 every
  // (app, value) point runs concurrently, not just the points of one app.
  std::vector<harness::AppRun> flat =
      sweep.run_points(suite_points(values, apply, opt), opt.pool());

  // --check-consistency turns the bench into a pass/fail harness: any
  // violation (already reported per-run on stderr) fails the process.
  std::uint64_t violations = 0;
  for (const auto& r : flat) violations += r.result.check_violations;
  if (violations > 0) {
    std::fprintf(stderr,
                 "%s: consistency checker found %llu violation(s)\n",
                 figure.c_str(),
                 static_cast<unsigned long long>(violations));
    std::exit(1);
  }

  std::vector<std::vector<harness::AppRun>> all;
  auto it = flat.begin();
  for (const auto& app : opt.app_names) {
    std::vector<harness::AppRun> runs(
        std::make_move_iterator(it),
        std::make_move_iterator(it + static_cast<std::ptrdiff_t>(values.size())));
    it += static_cast<std::ptrdiff_t>(values.size());
    std::vector<std::string> row{app};
    for (const auto& r : runs) row.push_back(harness::fmt(r.speedup()));
    table.add_row(std::move(row));
    all.push_back(std::move(runs));
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");

  std::printf("== %s: speedup (16 processors) vs %s ==\n", figure.c_str(),
              param_name.c_str());
  table.print();
  harness::maybe_write_csv(table, opt.csv_dir, figure);
  return all;
}

void print_relation(const std::string& figure,
                    const std::string& slowdown_label,
                    const std::string& metric_label,
                    const std::vector<std::vector<harness::AppRun>>& sweeps,
                    const std::function<double(const harness::AppRun&)>& metric,
                    const Options& opt) {
  std::vector<double> slowdowns;
  std::vector<double> metrics;
  for (const auto& runs : sweeps) {
    slowdowns.push_back(std::max(0.0, harness::max_slowdown_pct(runs)));
    metrics.push_back(metric(runs.front()));
  }
  const double max_s = std::max(1e-12, *std::max_element(slowdowns.begin(),
                                                         slowdowns.end()));
  const double max_m =
      std::max(1e-12, *std::max_element(metrics.begin(), metrics.end()));

  harness::Table table({"application", slowdown_label, metric_label});
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    table.add_row({opt.app_names[i], harness::fmt(slowdowns[i] / max_s),
                   harness::fmt(metrics[i] / max_m)});
  }
  std::printf("== %s: normalized %s vs normalized %s ==\n", figure.c_str(),
              slowdown_label.c_str(), metric_label.c_str());
  table.print();
  harness::maybe_write_csv(table, opt.csv_dir, figure);
}

}  // namespace svmsim::bench
