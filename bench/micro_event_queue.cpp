// Scheduler microbenchmark: event-queue throughput on synthetic delay
// mixes, measured for both backends (the tiered scheduler and the original
// binary heap — both are always compiled; see src/engine/event_queue.hpp).
//
// Each measurement keeps a fixed number of events in flight: the queue is
// seeded to the target depth and every fired event schedules one successor
// with a delay drawn from the scenario's distribution, so the steady-state
// profile (lane/wheel/heap tier usage, pending count) matches the scenario
// rather than a drain ramp. Delay scenarios cover each tier: same-tick
// zero-delay (the FIFO lane), short and medium delays (wheel levels 0-2),
// far-future delays (wheel level 3), overflow beyond the wheel horizon (the
// fallback heap tier), and a mixed 60/30/10 profile shaped like the
// simulator's own scheduling behavior.
//
//   ./micro_event_queue [--fires=N] [--out=BENCH_sweep.json]
//
// Results are printed as a table and merged into the --out JSON as a
// "micro_event_queue" section, alongside perf_selfcheck's whole-simulator
// numbers (each tool preserves the other's section when rewriting the file).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/event_queue.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "trace/trace.hpp"

namespace {

using svmsim::Cycles;

/// Deterministic split-output LCG (same constants as MMIX); good enough to
/// decorrelate delays, and identical across backends by construction.
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() noexcept {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  }
};

struct Scenario {
  const char* name;
  Cycles (*delay)(Lcg&);
};

const Scenario kScenarios[] = {
    {"zero", [](Lcg&) -> Cycles { return 0; }},
    {"short", [](Lcg& r) -> Cycles { return 1 + r.next() % 255; }},
    {"medium", [](Lcg& r) -> Cycles { return 256 + r.next() % 65280; }},
    {"far",
     [](Lcg& r) -> Cycles {
       return (Cycles{1} << 24) + r.next() % (Cycles{1} << 24);
     }},
    {"overflow",
     [](Lcg& r) -> Cycles { return (Cycles{1} << 33) + r.next() % 1024; }},
    {"mixed",
     [](Lcg& r) -> Cycles {
       const std::uint64_t p = r.next() % 10;
       if (p < 6) return 0;
       if (p < 9) return 1 + r.next() % 255;
       return 256 + r.next() % 65280;
     }},
};

constexpr std::size_t kDepths[] = {16, 256, 4096};

/// One self-perpetuating chain: seed `depth` events, then every fire
/// schedules one successor until `fires` total events have been scheduled,
/// after which the queue drains. Returns fires per wall-clock second.
template <class Queue>
double run_chain(const Scenario& sc, std::size_t depth, std::uint64_t fires) {
  struct Driver {
    Queue q;
    Lcg rng;
    Cycles (*delay)(Lcg&);
    std::uint64_t remaining = 0;

    void pump() {
      if (remaining == 0) return;
      --remaining;
      const Cycles d = delay(rng);
      if (d == 0) {
        q.schedule_now([this] { pump(); });
      } else {
        q.schedule_in(d, [this] { pump(); });
      }
    }
  };

  Driver drv;
  drv.rng.s = 0x9e3779b97f4a7c15ull;  // fixed seed: identical across backends
  drv.delay = sc.delay;
  const std::uint64_t seed = fires < depth ? fires : depth;
  drv.remaining = fires;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < seed; ++i) drv.pump();
  drv.q.run_until_idle();
  const auto t1 = std::chrono::steady_clock::now();

  if (drv.q.events_fired() != fires) {
    std::fprintf(stderr, "micro_event_queue: %s/d%zu fired %llu != %llu\n",
                 sc.name, depth,
                 static_cast<unsigned long long>(drv.q.events_fired()),
                 static_cast<unsigned long long>(fires));
    std::exit(1);
  }
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  return wall > 0 ? static_cast<double>(fires) / wall : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace svmsim;
  harness::Cli cli(argc, argv);
  const std::uint64_t fires =
      static_cast<std::uint64_t>(cli.get_int("fires", 500000));
  const std::string out_path = cli.get_or("out", "BENCH_sweep.json");

  std::printf("== micro_event_queue: %llu fires per cell ==\n",
              static_cast<unsigned long long>(fires));
  harness::Table t({"scenario", "depth", "tiered ev/s", "heap ev/s", "ratio"});
  std::ostringstream section;
  section << "\"micro_event_queue\": {\n    \"fires\": " << fires
          << ",\n    \"events_per_sec\": {";
  bool first = true;
  for (const auto& sc : kScenarios) {
    for (std::size_t depth : kDepths) {
      const double tiered =
          run_chain<engine::detail::TieredScheduler>(sc, depth, fires);
      const double heap =
          run_chain<engine::detail::HeapScheduler>(sc, depth, fires);
      t.add_row({sc.name, std::to_string(depth), harness::fmt(tiered, 0),
                 harness::fmt(heap, 0),
                 harness::fmt(heap > 0 ? tiered / heap : 0.0, 2)});
      section << (first ? "" : ",") << "\n      \"" << sc.name << "/d" << depth
              << "\": {\"tiered\": " << tiered << ", \"heap\": " << heap
              << "}";
      first = false;
    }
  }
  section << "\n    }\n  }";
  t.print();

  // Merge our section into the shared BENCH JSON (replacing any previous
  // run's section, preserving everything else).
  std::string text;
  {
    std::ifstream in(out_path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      text = harness::strip_json_section(ss.str(), "micro_event_queue");
    }
  }
  const std::size_t close = text.find_last_of('}');
  if (close == std::string::npos) {
    text = "{\n  \"bench\": \"sweep\",\n  \"schema\": 2,\n  \"build\": \"" +
           trace::build_provenance() + "\",\n  " + section.str() + "\n}\n";
  } else {
    text = text.substr(0, close) + ",\n  " + section.str() + "\n}\n";
  }
  harness::write_file_atomic(out_path, text);
  std::printf("(merged into %s)\n", out_path.c_str());
  return 0;
}
