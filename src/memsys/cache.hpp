// Set-associative cache tag store (timing only — data lives in the SVM
// address space). Used for both the write-through L1 and write-back L2.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "engine/types.hpp"

namespace svmsim::memsys {

class Cache {
 public:
  explicit Cache(const CacheParams& p);

  /// Probe for `line_addr` (byte address of the line start). On hit, updates
  /// LRU and optionally marks the line dirty.
  bool lookup(std::uint64_t line_addr, bool mark_dirty = false);

  /// Probe without disturbing LRU/dirty state.
  [[nodiscard]] bool contains(std::uint64_t line_addr) const;

  struct Victim {
    bool evicted = false;           // a valid line was displaced
    bool dirty = false;             // ... and it needs a writeback
    std::uint64_t line_addr = 0;
  };

  /// Install `line_addr`, evicting the LRU way. Returns the victim.
  Victim fill(std::uint64_t line_addr, bool dirty);

  /// Drop every line within [start, start+len). Used when the SVM layer
  /// invalidates or replaces a page: stale cached lines must not hit.
  void invalidate_range(std::uint64_t start, std::uint64_t len);

  [[nodiscard]] std::uint32_t line_bytes() const noexcept {
    return params_.line_bytes;
  }
  [[nodiscard]] Cycles hit_cycles() const noexcept {
    return params_.hit_cycles;
  }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }

 private:
  struct Line {
    std::uint64_t addr = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::uint32_t set_of(std::uint64_t line_addr) const {
    return static_cast<std::uint32_t>((line_addr / params_.line_bytes) %
                                      sets_);
  }
  Line* find(std::uint64_t line_addr);
  [[nodiscard]] const Line* find(std::uint64_t line_addr) const;

  CacheParams params_;
  std::uint32_t sets_;
  std::vector<Line> lines_;  // sets_ x associativity, row-major by set
  std::uint64_t tick_ = 0;   // LRU clock
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace svmsim::memsys
