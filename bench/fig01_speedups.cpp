// Figure 1: ideal and realistic (achievable) speedups for each application,
// on 16 processors with 4 per node.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace svmsim;
  auto opt = bench::Options::parse(argc, argv);
  harness::Sweep sweep(opt.scale);

  std::vector<harness::SweepPoint> points;
  for (const auto& app : opt.app_names) {
    points.push_back({app, bench::base_config(), 0});
  }
  auto runs = sweep.run_points(points, opt.pool());

  harness::Table t({"application", "achievable speedup", "ideal speedup"});
  for (const auto& run : runs) {
    t.add_row({run.app, harness::fmt(run.speedup()),
               harness::fmt(run.ideal_speedup())});
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");
  std::printf(
      "== Figure 1: ideal vs achievable speedups (16 procs, 4/node) ==\n");
  t.print();
  harness::maybe_write_csv(t, opt.csv_dir, "fig01");
  return 0;
}
