// Large-machine scaling bench: host-side cost of the protocol hot path as
// the simulated cluster grows past the paper's 16 processors.
//
// ROADMAP item 1 wants the four-parameter sweep re-run at 64-1024
// processors; what that needs from the simulator is throughput, and what
// throughput needs is synchronization cost that scales with *activity*, not
// with machine size (sparse vector-clock deltas, summary-short-circuited
// merges, incremental barrier reduction — see docs/scaling.md). This bench
// measures exactly that: events/sec, allocs/event and host nanoseconds per
// synchronization operation at --procs ∈ {16, 64, 256, 1024}, on two arms:
//
//   sync   the stress-gen fuzz workload (lock-guarded RMWs on falsely
//          shared slots + two barriers per round) under both protocols —
//          the sync-heavy arm the CI gates watch
//   fig05  the same workload across the paper's fig05 host-overhead matrix
//          (0 and 1000 cycles), HLRC — scaling of the paper's own
//          parameter sweep, not just of a stress point
//
// Every point runs serially and under --par-cores=N; the two results must
// be bit-identical (the PDES determinism contract) and the run must
// validate, so this doubles as a protocol correctness check at sizes the
// tier-1 tests never reach. Results are merged into the shared
// BENCH_sweep.json as a "scale" section (preserving other tools' sections).
//
//   ./bench_scale [--procs=16,64,256,1024] [--par-cores=4] [--seed=3]
//                 [--scale=tiny] [--out=BENCH_sweep.json]
//                 [--max-regression-16=F] [--min-speedup-256=X]
//                 [--min-eps-ratio-256=R]
//
// Gates (exit 1 when violated):
//   --max-regression-16=F   serial events/sec on the sync/hlrc arm at 16
//                           procs must be >= (1-F) x the previous file's
//                           value. Self-disables (with a note) when the
//                           previous file lacks a scale section — the first
//                           run on a fresh checkout must succeed.
//   --min-speedup-256=X     serial events/sec on the sync/hlrc arm at 256
//                           procs must be >= X x the previous file's value
//                           (the "≥2x at 256 procs" acceptance gate).
//                           Self-disables like --max-regression-16.
//   --min-eps-ratio-256=R   eps(256)/eps(16) on the sync/hlrc serial arm
//                           must be >= R. Within-run, so it never
//                           self-disables: a reintroduced O(P) hot path
//                           drags the ratio down on any machine.
//
// --prev-eps-16=N / --prev-eps-256=N override the previous-file reference
// values for the two vs-previous gates. CI uses these to pin the pre-PR
// baseline measurements (recorded in .github/workflows/ci.yml) on runners
// that start from a fresh checkout with no BENCH_sweep.json.
//
// Exit status is also nonzero if any parallel run differs from its serial
// run or any run fails validation.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "trace/trace.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator-new in the binary ticks it.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// GCC pairs inlined new-expressions with the malloc inside the replacement
// and flags a mismatch; the replacement set is consistent, so silence it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace svmsim;

/// One timed run of one configuration (serial or PDES).
struct Timed {
  RunResult result;
  double wall_seconds = 0.0;
  std::uint64_t allocs = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0
               ? static_cast<double>(result.events) / wall_seconds
               : 0.0;
  }
  [[nodiscard]] double allocs_per_event() const {
    return result.events > 0 ? static_cast<double>(allocs) /
                                   static_cast<double>(result.events)
                             : 0.0;
  }
  /// Lock acquires (local + remote) plus per-processor barrier crossings:
  /// the denominator of the per-sync host cost.
  [[nodiscard]] std::uint64_t syncs() const {
    const auto& c = result.stats.counters();
    return c.local_lock_acquires + c.remote_lock_acquires + c.barriers;
  }
  [[nodiscard]] double ns_per_sync() const {
    const std::uint64_t s = syncs();
    return s > 0 ? wall_seconds * 1e9 / static_cast<double>(s) : 0.0;
  }
};

Timed timed_run(const std::string& app, apps::Scale scale,
                const SimConfig& cfg) {
  auto w = apps::make_app(app, scale);
  Timed t;
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  t.result = run(*w, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  t.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  t.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  return t;
}

/// One (arm, protocol, overhead, procs) measurement: serial + parallel.
struct Point {
  std::string arm;
  std::string protocol;
  Cycles host_overhead = 0;
  int procs = 0;
  int nodes = 0;
  Timed serial;
  Timed par;
  bool identical = false;
  bool validated = false;
};

/// Serial and PDES runs of one point must be bit-identical.
bool same_run(const RunResult& a, const RunResult& b) {
  return a.time == b.time && a.events == b.events && a.stats == b.stats &&
         a.stats.counters() == b.stats.counters();
}

void emit_timed(std::ostringstream& json, const char* name, const Timed& t) {
  json << "\"" << name << "\": {\"wall_seconds\": " << t.wall_seconds
       << ", \"events\": " << t.result.events
       << ", \"events_per_sec\": " << t.events_per_sec()
       << ", \"allocs\": " << t.allocs
       << ", \"allocs_per_event\": " << t.allocs_per_event()
       << ", \"syncs\": " << t.syncs()
       << ", \"ns_per_sync\": " << t.ns_per_sync()
       << ", \"peak_clock_pool\": " << t.result.peak_clock_pool
       << ", \"sim_cycles\": " << t.result.time << "}";
}

/// Pull one numeric field out of the previous file's "scale" section (crude
/// but enough for the flat JSON this program writes itself).
std::optional<double> scale_number(const std::string& text,
                                   const std::string& key) {
  const std::size_t s = text.find("\"scale\"");
  if (s == std::string::npos) return std::nullopt;
  const std::size_t k = text.find("\"" + key + "\"", s);
  if (k == std::string::npos) return std::nullopt;
  const std::size_t colon = text.find(':', k);
  if (colon == std::string::npos) return std::nullopt;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  harness::Cli cli(argc, argv);
  const char* argv0 = argc > 0 ? argv[0] : "bench_scale";

  apps::Scale scale = apps::Scale::kTiny;
  const std::string scale_arg = cli.get_or("scale", "tiny");
  if (scale_arg == "small") {
    scale = apps::Scale::kSmall;
  } else if (scale_arg == "large") {
    scale = apps::Scale::kLarge;
  }
  const long seed = cli.get_int("seed", 3);
  const std::string app = "stress-gen@" + std::to_string(seed);
  const int par_cores =
      std::max(2, static_cast<int>(cli.get_int("par-cores", 4)));
  const std::string out_path = cli.get_or("out", "BENCH_sweep.json");
  const double max_regression_16 = cli.get_double("max-regression-16", 0.0);
  const double min_speedup_256 = cli.get_double("min-speedup-256", 0.0);
  const double min_eps_ratio_256 = cli.get_double("min-eps-ratio-256", 0.0);

  const SimConfig base = bench::base_config();
  std::vector<int> procs_list;
  {
    std::stringstream ss(cli.get_or("procs", "16,64,256,1024"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item.empty()) continue;
      procs_list.push_back(bench::checked_total_procs(
          argv0, "--procs", std::strtol(item.c_str(), nullptr, 10),
          base.comm.procs_per_node));
    }
  }
  if (procs_list.empty()) {
    std::fprintf(stderr, "%s: --procs needs at least one cluster size\n",
                 argv0);
    return 2;
  }

  // The arm matrix at each size: the gated sync-heavy arm under both
  // protocols, then the fig05 host-overhead endpoints under HLRC.
  struct Arm {
    const char* name;
    Protocol protocol;
    Cycles host_overhead;
  };
  const Arm arms[] = {
      {"sync", Protocol::kHLRC, base.comm.host_overhead},
      {"sync", Protocol::kAURC, base.comm.host_overhead},
      {"fig05", Protocol::kHLRC, 0},
      {"fig05", Protocol::kHLRC, 1000},
  };

  std::vector<Point> points;
  bool all_identical = true;
  bool all_validated = true;
  for (int procs : procs_list) {
    for (const Arm& arm : arms) {
      Point p;
      p.arm = arm.name;
      p.protocol = to_string(arm.protocol);
      p.host_overhead = arm.host_overhead;
      p.procs = procs;
      SimConfig cfg = base;
      cfg.comm.total_procs = procs;
      cfg.comm.protocol = arm.protocol;
      cfg.comm.host_overhead = arm.host_overhead;
      p.nodes = cfg.comm.node_count();
      std::fprintf(stderr,
                   "bench_scale: %s/%s overhead=%llu procs=%d (%d nodes), "
                   "serial then --par-cores=%d\n",
                   p.arm.c_str(), p.protocol.c_str(),
                   static_cast<unsigned long long>(p.host_overhead), procs,
                   p.nodes, par_cores);
      p.serial = timed_run(app, scale, cfg);
      cfg.par_cores = par_cores;
      p.par = timed_run(app, scale, cfg);
      p.identical = same_run(p.serial.result, p.par.result);
      p.validated = p.serial.result.validated && p.par.result.validated;
      all_identical &= p.identical;
      all_validated &= p.validated;
      points.push_back(std::move(p));
    }
  }

  // Previous numbers (if any) for the regression gates. Degrade gracefully:
  // a missing file or one without a scale section only disables the
  // vs-previous gates.
  std::optional<double> prev_eps16, prev_eps256;
  std::string prev_text;
  {
    std::ifstream prev(out_path);
    if (prev) {
      std::stringstream ss;
      ss << prev.rdbuf();
      prev_text = ss.str();
      prev_eps16 = scale_number(prev_text, "gate_eps_16");
      prev_eps256 = scale_number(prev_text, "gate_eps_256");
    }
  }
  if (auto v = cli.get_double("prev-eps-16", 0.0); v > 0) prev_eps16 = v;
  if (auto v = cli.get_double("prev-eps-256", 0.0); v > 0) prev_eps256 = v;

  // The gate anchors: serial events/sec on the sync/hlrc arm.
  auto gate_eps = [&](int procs) -> std::optional<double> {
    for (const Point& p : points) {
      if (p.arm == "sync" && p.protocol == to_string(Protocol::kHLRC) &&
          p.procs == procs) {
        return p.serial.events_per_sec();
      }
    }
    return std::nullopt;
  };
  const std::optional<double> eps16 = gate_eps(16);
  const std::optional<double> eps256 = gate_eps(256);
  const double eps_ratio_256 =
      eps16 && eps256 && *eps16 > 0 ? *eps256 / *eps16 : 0.0;

  std::ostringstream section;
  // Section schema 2: each timed run gained peak_clock_pool (high-water
  // pooled clock bodies — the sparse-transport footprint at scale).
  section << "\"scale\": {\n    \"schema\": 2"
          << ",\n    \"app\": \"" << app << "\""
          << ",\n    \"par_cores\": " << par_cores << ",\n    \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    section << (i ? "," : "") << "\n      {\"arm\": \"" << p.arm
            << "\", \"protocol\": \"" << p.protocol
            << "\", \"host_overhead\": " << p.host_overhead
            << ", \"procs\": " << p.procs << ", \"nodes\": " << p.nodes
            << ",\n       ";
    emit_timed(section, "serial", p.serial);
    section << ",\n       ";
    emit_timed(section, "par", p.par);
    section << ",\n       \"identical\": " << (p.identical ? "true" : "false")
            << ", \"validated\": " << (p.validated ? "true" : "false") << "}";
  }
  section << "\n    ]";
  if (eps16) section << ",\n    \"gate_eps_16\": " << *eps16;
  if (eps256) section << ",\n    \"gate_eps_256\": " << *eps256;
  if (eps16 && eps256) {
    section << ",\n    \"eps_ratio_256\": " << eps_ratio_256;
  }
  section << ",\n    \"identical_results\": "
          << (all_identical ? "true" : "false")
          << ",\n    \"validated\": " << (all_validated ? "true" : "false")
          << "\n  }";

  // Merge our section into the shared BENCH JSON (replacing any previous
  // run's section, preserving everything else).
  std::string text = harness::strip_json_section(prev_text, "scale");
  const std::size_t close = text.find_last_of('}');
  if (close == std::string::npos) {
    text = "{\n  \"bench\": \"sweep\",\n  \"schema\": 2,\n  \"build\": \"" +
           trace::build_provenance() + "\",\n  " + section.str() + "\n}\n";
  } else {
    text = text.substr(0, close) + ",\n  " + section.str() + "\n}\n";
  }
  harness::write_file_atomic(out_path, text);

  std::printf("== bench_scale: %s, serial vs --par-cores=%d ==\n", app.c_str(),
              par_cores);
  harness::Table t({"arm", "protocol", "ovh", "procs", "events", "ev/s",
                    "par ev/s", "allocs/ev", "ns/sync", "pk clocks", "same"});
  for (const Point& p : points) {
    t.add_row({p.arm, p.protocol, std::to_string(p.host_overhead),
               std::to_string(p.procs), std::to_string(p.serial.result.events),
               harness::fmt(p.serial.events_per_sec(), 0),
               harness::fmt(p.par.events_per_sec(), 0),
               harness::fmt(p.serial.allocs_per_event(), 3),
               harness::fmt(p.serial.ns_per_sync(), 0),
               std::to_string(p.serial.result.peak_clock_pool),
               p.identical && p.validated ? "yes" : "NO"});
  }
  t.print();
  std::printf("(merged into %s)\n", out_path.c_str());

  bool gates_ok = true;
  if (max_regression_16 > 0 && eps16) {
    if (!prev_eps16) {
      std::fprintf(stderr,
                   "bench_scale: no previous scale section in %s; skipping "
                   "the --max-regression-16 gate\n",
                   out_path.c_str());
    } else if (*eps16 < (1.0 - max_regression_16) * *prev_eps16) {
      std::fprintf(stderr,
                   "bench_scale: events/sec at 16 procs regressed %.0f -> "
                   "%.0f, past the --max-regression-16=%.2f gate\n",
                   *prev_eps16, *eps16, max_regression_16);
      gates_ok = false;
    }
  }
  if (min_speedup_256 > 0 && eps256) {
    if (!prev_eps256) {
      std::fprintf(stderr,
                   "bench_scale: no previous scale section in %s; skipping "
                   "the --min-speedup-256 gate\n",
                   out_path.c_str());
    } else if (*eps256 < min_speedup_256 * *prev_eps256) {
      std::fprintf(stderr,
                   "bench_scale: events/sec at 256 procs %.0f is below %.2fx "
                   "the previous %.0f (--min-speedup-256 gate)\n",
                   *eps256, min_speedup_256, *prev_eps256);
      gates_ok = false;
    }
  }
  if (min_eps_ratio_256 > 0 && eps16 && eps256) {
    if (eps_ratio_256 < min_eps_ratio_256) {
      std::fprintf(stderr,
                   "bench_scale: eps(256)/eps(16) = %.3f is below the "
                   "--min-eps-ratio-256=%.3f gate (per-sync host cost is "
                   "growing with machine size again)\n",
                   eps_ratio_256, min_eps_ratio_256);
      gates_ok = false;
    }
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "bench_scale: serial and --par-cores=%d results differ\n",
                 par_cores);
  }
  if (!all_validated) {
    std::fprintf(stderr, "bench_scale: a run failed validation\n");
  }
  return all_identical && all_validated && gates_ok ? 0 : 1;
}
